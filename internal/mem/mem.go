// Package mem defines the address arithmetic and request types shared by the
// cache hierarchy, the DRAM model, and the prefetchers.
//
// All byte addresses are uint64. A "line address" is a byte address shifted
// right by LineShift; a "page number" is a byte address shifted right by
// PageShift. The helpers here keep those conversions in one place so that the
// rest of the codebase never hand-rolls shift constants.
package mem

const (
	// LineSize is the cache line size in bytes.
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// PageSize is the physical page size in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// LinesPerPage is the number of cache lines in a page.
	LinesPerPage = PageSize / LineSize
	// OffsetBits is log2(LinesPerPage): bits of the in-page line offset.
	OffsetBits = 6
)

// AccessType distinguishes the kinds of memory requests flowing through the
// hierarchy.
type AccessType uint8

const (
	// Load is a demand read.
	Load AccessType = iota
	// Store is a demand write.
	Store
	// Prefetch is a speculative read injected by a prefetcher.
	Prefetch
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return "unknown"
	}
}

// LineAddr returns the cache line address of a byte address.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// LineToByte returns the first byte address of a line address.
func LineToByte(line uint64) uint64 { return line << LineShift }

// PageOf returns the page number of a byte address.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// PageOfLine returns the page number of a line address.
func PageOfLine(line uint64) uint64 { return line >> (PageShift - LineShift) }

// LineOffset returns the in-page line offset [0, LinesPerPage) of a byte
// address.
func LineOffset(addr uint64) int { return int((addr >> LineShift) & (LinesPerPage - 1)) }

// LineOffsetOfLine returns the in-page line offset of a line address.
func LineOffsetOfLine(line uint64) int { return int(line & (LinesPerPage - 1)) }

// SamePage reports whether two line addresses fall in the same page.
func SamePage(lineA, lineB uint64) bool { return PageOfLine(lineA) == PageOfLine(lineB) }

// Request is a memory request as seen by the cache hierarchy.
type Request struct {
	// PC is the program counter of the instruction that issued the request.
	// Prefetch requests carry the PC of the triggering demand.
	PC uint64
	// Addr is the byte address.
	Addr uint64
	// Type is the request kind.
	Type AccessType
	// Core is the issuing core's index.
	Core int
}

// Line returns the request's cache line address.
func (r Request) Line() uint64 { return LineAddr(r.Addr) }

// IsDemand reports whether the request is a demand (non-prefetch) access.
func (r Request) IsDemand() bool { return r.Type != Prefetch }
