package mem

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if 1<<LineShift != LineSize {
		t.Errorf("LineShift %d inconsistent with LineSize %d", LineShift, LineSize)
	}
	if 1<<PageShift != PageSize {
		t.Errorf("PageShift %d inconsistent with PageSize %d", PageShift, PageSize)
	}
	if LinesPerPage != PageSize/LineSize {
		t.Errorf("LinesPerPage = %d, want %d", LinesPerPage, PageSize/LineSize)
	}
	if 1<<OffsetBits != LinesPerPage {
		t.Errorf("OffsetBits %d inconsistent with LinesPerPage %d", OffsetBits, LinesPerPage)
	}
}

func TestLineAddr(t *testing.T) {
	cases := []struct {
		addr uint64
		line uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{127, 1},
		{4096, 64},
		{1 << 40, 1 << 34},
	}
	for _, c := range cases {
		if got := LineAddr(c.addr); got != c.line {
			t.Errorf("LineAddr(%#x) = %d, want %d", c.addr, got, c.line)
		}
	}
}

func TestLineToByteRoundTrip(t *testing.T) {
	f := func(line uint64) bool {
		line &= (1 << 58) - 1 // keep the shift in range
		return LineAddr(LineToByte(line)) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineAddrIdempotentOverLine(t *testing.T) {
	f := func(addr uint64) bool {
		// Every byte of a line maps to the same line address.
		base := LineToByte(LineAddr(addr))
		for _, off := range []uint64{0, 1, LineSize - 1} {
			if LineAddr(base+off) != LineAddr(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Errorf("PageOf boundary wrong: %d %d", PageOf(4095), PageOf(4096))
	}
	f := func(addr uint64) bool {
		return PageOf(addr) == PageOfLine(LineAddr(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineOffset(t *testing.T) {
	if LineOffset(0) != 0 {
		t.Errorf("LineOffset(0) = %d", LineOffset(0))
	}
	if LineOffset(4096-64) != LinesPerPage-1 {
		t.Errorf("last line of page offset = %d, want %d", LineOffset(4096-64), LinesPerPage-1)
	}
	f := func(addr uint64) bool {
		off := LineOffset(addr)
		return off >= 0 && off < LinesPerPage && off == LineOffsetOfLine(LineAddr(addr))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamePage(t *testing.T) {
	if !SamePage(0, uint64(LinesPerPage-1)) {
		t.Error("lines 0 and 63 should share a page")
	}
	if SamePage(0, uint64(LinesPerPage)) {
		t.Error("lines 0 and 64 should not share a page")
	}
	f := func(line uint64) bool {
		return SamePage(line, line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessTypeString(t *testing.T) {
	cases := map[AccessType]string{
		Load:           "load",
		Store:          "store",
		Prefetch:       "prefetch",
		AccessType(99): "unknown",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

func TestRequest(t *testing.T) {
	r := Request{PC: 0x400000, Addr: 4096 + 65, Type: Load, Core: 2}
	if r.Line() != 65 {
		t.Errorf("Line() = %d, want 65", r.Line())
	}
	if !r.IsDemand() {
		t.Error("load should be a demand")
	}
	if (Request{Type: Prefetch}).IsDemand() {
		t.Error("prefetch should not be a demand")
	}
	if !(Request{Type: Store}).IsDemand() {
		t.Error("store should be a demand")
	}
}
