package xlat

import (
	"testing"
	"testing/quick"

	"pythia/internal/mem"
)

func TestTranslatorStableMapping(t *testing.T) {
	tr := NewTranslator(1)
	a := tr.Translate(0x1234)
	b := tr.Translate(0x1234)
	if a != b {
		t.Errorf("translation not stable: %#x vs %#x", a, b)
	}
}

func TestTranslatorPreservesPageOffset(t *testing.T) {
	tr := NewTranslator(1)
	f := func(vaddr uint64) bool {
		p := tr.Translate(vaddr)
		return p&(mem.PageSize-1) == vaddr&(mem.PageSize-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTranslatorInjective(t *testing.T) {
	tr := NewTranslator(7)
	seen := map[uint64]uint64{}
	for v := uint64(0); v < 5000; v++ {
		f := tr.Frame(v)
		if prev, ok := seen[f]; ok {
			t.Fatalf("frame %#x assigned to pages %d and %d", f, prev, v)
		}
		seen[f] = v
	}
	if tr.Pages() != 5000 {
		t.Errorf("Pages() = %d", tr.Pages())
	}
}

func TestTranslatorScattersContiguousPages(t *testing.T) {
	tr := NewTranslator(3)
	adjacent := 0
	prev := tr.Frame(0)
	for v := uint64(1); v < 1000; v++ {
		f := tr.Frame(v)
		if f == prev+1 {
			adjacent++
		}
		prev = f
	}
	if adjacent > 50 {
		t.Errorf("%d/999 virtually-adjacent pages stayed physically adjacent", adjacent)
	}
}

func TestTranslatorSeedsDiffer(t *testing.T) {
	a, b := NewTranslator(1), NewTranslator(2)
	same := 0
	for v := uint64(0); v < 100; v++ {
		if a.Frame(v) == b.Frame(v) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/100 identical frames across seeds", same)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(16, 2)
	if _, hit := tlb.Lookup(5); hit {
		t.Fatal("cold TLB hit")
	}
	tlb.Fill(5, 99)
	frame, hit := tlb.Lookup(5)
	if !hit || frame != 99 {
		t.Errorf("Lookup = (%d,%v)", frame, hit)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Errorf("counters %d/%d", tlb.Hits, tlb.Misses)
	}
	if hr := tlb.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v", hr)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(1, 2)
	tlb.Fill(1, 10)
	tlb.Fill(2, 20)
	tlb.Lookup(1) // 1 is recent
	tlb.Fill(3, 30)
	if _, hit := tlb.Lookup(2); hit {
		t.Error("LRU victim survived")
	}
	if _, hit := tlb.Lookup(1); !hit {
		t.Error("recently used entry evicted")
	}
}

func TestTLBBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewTLB(3, 2)
}

func TestMMUEndToEnd(t *testing.T) {
	m := NewMMU(11)
	// Repeated accesses to a small footprint should produce a high TLB hit
	// rate and stable translations.
	var first []uint64
	for round := 0; round < 3; round++ {
		for page := uint64(0); page < 16; page++ {
			p := m.Translate(page*mem.PageSize + 64)
			if round == 0 {
				first = append(first, p)
			} else if p != first[page] {
				t.Fatalf("translation drifted for page %d", page)
			}
		}
	}
	if m.TLBHitRate() < 0.5 {
		t.Errorf("TLB hit rate %.2f too low for a 16-page footprint", m.TLBHitRate())
	}
}
