// Package xlat provides a virtual-to-physical address translation substrate:
// a deterministic page allocator (first-touch pseudo-random frame
// assignment, as an OS would produce after some uptime) and a small TLB
// model. Post-L1 prefetchers operate on physical addresses and must not
// cross physical page boundaries — the property Pythia's R_CL reward and
// every baseline's page clamp rely on. Translation makes virtually
// contiguous streams physically discontiguous, which is why those clamps
// matter; the hierarchy can run with translation enabled as an ablation
// (DESIGN.md).
package xlat

import (
	"pythia/internal/mem"
)

// Translator maps virtual pages to physical frames on first touch, using a
// deterministic hash sequence so simulations remain reproducible.
type Translator struct {
	seed  uint64
	table map[uint64]uint64 // vpage -> pframe
	next  uint64            // allocation counter
	// frames tracks allocated frames to keep the mapping injective.
	frames map[uint64]bool
}

// NewTranslator builds a translator; seed controls frame scatter.
func NewTranslator(seed uint64) *Translator {
	return &Translator{
		seed:   seed,
		table:  make(map[uint64]uint64),
		frames: make(map[uint64]bool),
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Frame returns the physical frame of a virtual page, allocating on first
// touch. Allocation scatters frames pseudo-randomly within a large physical
// range while staying injective.
func (t *Translator) Frame(vpage uint64) uint64 {
	if f, ok := t.table[vpage]; ok {
		return f
	}
	for {
		cand := mix(t.seed^t.next*0x9E3779B97F4A7C15) & ((1 << 36) - 1)
		t.next++
		if !t.frames[cand] {
			t.frames[cand] = true
			t.table[vpage] = cand
			return cand
		}
	}
}

// Translate converts a virtual byte address to a physical byte address.
func (t *Translator) Translate(vaddr uint64) uint64 {
	return t.Frame(mem.PageOf(vaddr))<<mem.PageShift | vaddr&(mem.PageSize-1)
}

// Pages returns the number of distinct pages touched.
func (t *Translator) Pages() int { return len(t.table) }

// TLB is a small set-associative translation lookaside buffer used to
// account translation hit rates (the simulator charges no extra latency;
// the structure exists for statistics and future extensions).
type TLB struct {
	sets, ways int
	entries    []tlbEntry
	clock      int64

	Hits, Misses int64
}

type tlbEntry struct {
	vpage uint64
	frame uint64
	used  int64
	valid bool
}

// NewTLB builds a TLB with the given geometry (sets must be a power of
// two).
func NewTLB(sets, ways int) *TLB {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("xlat: TLB geometry must be positive with power-of-two sets")
	}
	return &TLB{sets: sets, ways: ways, entries: make([]tlbEntry, sets*ways)}
}

// Lookup probes the TLB; on a miss the caller should Fill after walking.
func (t *TLB) Lookup(vpage uint64) (frame uint64, hit bool) {
	set := int(vpage) & (t.sets - 1)
	t.clock++
	for w := 0; w < t.ways; w++ {
		e := &t.entries[set*t.ways+w]
		if e.valid && e.vpage == vpage {
			e.used = t.clock
			t.Hits++
			return e.frame, true
		}
	}
	t.Misses++
	return 0, false
}

// Fill inserts a translation, evicting the LRU way.
func (t *TLB) Fill(vpage, frame uint64) {
	set := int(vpage) & (t.sets - 1)
	victim, oldest := 0, int64(1<<62)
	for w := 0; w < t.ways; w++ {
		e := &t.entries[set*t.ways+w]
		if !e.valid {
			victim = w
			break
		}
		if e.used < oldest {
			victim, oldest = w, e.used
		}
	}
	t.clock++
	t.entries[set*t.ways+victim] = tlbEntry{vpage: vpage, frame: frame, used: t.clock, valid: true}
}

// HitRate returns the TLB hit fraction.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// MMU couples a translator with a TLB for convenient per-core use.
type MMU struct {
	xl  *Translator
	tlb *TLB
}

// NewMMU builds an MMU with a 64-set 4-way TLB.
func NewMMU(seed uint64) *MMU {
	return &MMU{xl: NewTranslator(seed), tlb: NewTLB(64, 4)}
}

// Translate maps a virtual byte address through the TLB and page table.
func (m *MMU) Translate(vaddr uint64) uint64 {
	vpage := mem.PageOf(vaddr)
	frame, hit := m.tlb.Lookup(vpage)
	if !hit {
		frame = m.xl.Frame(vpage)
		m.tlb.Fill(vpage, frame)
	}
	return frame<<mem.PageShift | vaddr&(mem.PageSize-1)
}

// TLBHitRate exposes the TLB hit fraction.
func (m *MMU) TLBHitRate() float64 { return m.tlb.HitRate() }
