// Package load is an open-loop load harness for pythia-serve: it
// synthesizes request arrivals from a schedule (constant RPS, ramps,
// bursts, diurnal curves, or a replayed schedule file) over a weighted
// mix of request classes, fires them at a live server through the typed
// api.Client, and reports client-side latency quantiles, throughput,
// and error/shed rates per class against declared SLOs.
//
// Open-loop means arrivals are generated on their own clock — a slow
// server does not slow the generator down, it just accumulates
// in-flight requests (bounded by MaxInFlight) and sheds. That is the
// regime a serving system actually faces: users do not politely wait
// for each other. Arrival gaps are sampled from an exponential
// distribution around the schedule's instantaneous rate, i.e. a
// (nonhomogeneous) Poisson process, matching how trace synthesizers in
// serving research model request streams.
package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"
)

// Schedule is an arrival-rate curve: the offered load in requests per
// second as a function of elapsed test time.
type Schedule interface {
	// RateAt returns the instantaneous arrival rate (req/s) at elapsed.
	RateAt(elapsed time.Duration) float64
	// Name identifies the schedule in reports ("constant(25rps)").
	Name() string
}

// Constant offers a fixed rate for the whole run.
type Constant struct {
	RPS float64
}

func (c Constant) RateAt(time.Duration) float64 { return c.RPS }
func (c Constant) Name() string                 { return fmt.Sprintf("constant(%grps)", c.RPS) }

// Ramp rises (or falls) linearly from From to To over Over, then holds
// at To.
type Ramp struct {
	From, To float64
	Over     time.Duration
}

func (r Ramp) RateAt(elapsed time.Duration) float64 {
	if r.Over <= 0 || elapsed >= r.Over {
		return r.To
	}
	frac := float64(elapsed) / float64(r.Over)
	return r.From + (r.To-r.From)*frac
}

func (r Ramp) Name() string {
	return fmt.Sprintf("ramp(%g→%grps/%s)", r.From, r.To, r.Over)
}

// Burst offers Base except for a spike window of Peak starting at At
// for For — the thundering-herd shape.
type Burst struct {
	Base, Peak float64
	At, For    time.Duration
}

func (b Burst) RateAt(elapsed time.Duration) float64 {
	if elapsed >= b.At && elapsed < b.At+b.For {
		return b.Peak
	}
	return b.Base
}

func (b Burst) Name() string {
	return fmt.Sprintf("burst(%g/%grps@%s+%s)", b.Base, b.Peak, b.At, b.For)
}

// Diurnal is a clamped sine around Base with the given Amplitude and
// Period — the day/night traffic curve, compressed to test length.
type Diurnal struct {
	Base, Amplitude float64
	Period          time.Duration
}

func (d Diurnal) RateAt(elapsed time.Duration) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := 2 * math.Pi * float64(elapsed) / float64(d.Period)
	r := d.Base + d.Amplitude*math.Sin(phase)
	if r < 0 {
		return 0
	}
	return r
}

func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%g±%grps/%s)", d.Base, d.Amplitude, d.Period)
}

// Point is one step of a replayed schedule: from AtSec onward, offer
// RPS (until the next point takes over).
type Point struct {
	AtSec float64 `json:"at_sec"`
	RPS   float64 `json:"rps"`
}

// Replay is a piecewise-constant schedule read from recorded points —
// the "replayed trace" mode for driving the server with a shape taken
// from a production RPS log.
type Replay struct {
	Points []Point
	Source string
}

func (r Replay) RateAt(elapsed time.Duration) float64 {
	sec := elapsed.Seconds()
	rate := 0.0
	for _, p := range r.Points {
		if p.AtSec > sec {
			break
		}
		rate = p.RPS
	}
	return rate
}

func (r Replay) Name() string {
	if r.Source != "" {
		return fmt.Sprintf("replay(%s,%d points)", r.Source, len(r.Points))
	}
	return fmt.Sprintf("replay(%d points)", len(r.Points))
}

// ReadReplay loads a schedule file: a JSON array of {"at_sec","rps"}
// points. Points are sorted by AtSec; the rate before the first point
// is zero.
func ReadReplay(path string) (Replay, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Replay{}, fmt.Errorf("load: read schedule: %w", err)
	}
	var pts []Point
	if err := json.Unmarshal(buf, &pts); err != nil {
		return Replay{}, fmt.Errorf("load: parse schedule %s: %w", path, err)
	}
	if len(pts) == 0 {
		return Replay{}, fmt.Errorf("load: schedule %s has no points", path)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].AtSec < pts[j].AtSec })
	return Replay{Points: pts, Source: path}, nil
}
