package load

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"pythia/internal/api"
)

// Class is one kind of synthetic request. Pick binds a single request's
// parameters from the dispatcher's RNG (so runs are reproducible from
// the seed) and returns the operation to execute concurrently.
type Class interface {
	Name() string
	Pick(rng *rand.Rand) func(ctx context.Context) error
}

// Targets names what the synthetic traffic aims at: the experiments
// whose stored results hot readers hammer (and simulators launch), the
// workloads train jobs use, and the scale everything runs at.
type Targets struct {
	Experiments []string
	Workloads   []string
	Scale       string
}

// ReadClass models the dominant traffic of a many-users serving system:
// GET a stored experiment result. Keys are drawn Zipf-distributed over
// the experiment list — a few experiments are hot, the tail is cold —
// controlled by S (the Zipf exponent, > 1; higher = more skew).
type ReadClass struct {
	Client *api.Client
	Targets
	// S is the Zipf skew exponent; values <= 1 fall back to 1.2.
	S float64

	zipf *rand.Zipf
}

func (c *ReadClass) Name() string { return "read" }

func (c *ReadClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	if c.zipf == nil {
		s := c.S
		if s <= 1 {
			s = 1.2
		}
		c.zipf = rand.NewZipf(rng, s, 1, uint64(len(c.Experiments)-1))
	}
	exp := c.Experiments[c.zipf.Uint64()]
	return func(ctx context.Context) error {
		_, err := c.Client.Result(ctx, exp, c.Scale)
		return err
	}
}

// SimulateClass launches experiment jobs (POST /runs): a store hit
// answers instantly with zero simulations, a miss occupies the executor.
// The measured latency is the launch round-trip — admission is the
// operation a client experiences; execution is asynchronous by design.
type SimulateClass struct {
	Client *api.Client
	Targets
}

func (c *SimulateClass) Name() string { return "simulate" }

func (c *SimulateClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	exp := c.Experiments[rng.Intn(len(c.Experiments))]
	return func(ctx context.Context) error {
		_, err := c.Client.Launch(ctx, api.LaunchRequest{Experiment: exp, Scale: c.Scale})
		return err
	}
}

// TrainClass launches policy-training jobs.
type TrainClass struct {
	Client *api.Client
	Targets
}

func (c *TrainClass) Name() string { return "train" }

func (c *TrainClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	wl := c.Workloads[rng.Intn(len(c.Workloads))]
	return func(ctx context.Context) error {
		_, err := c.Client.Launch(ctx, api.LaunchRequest{
			Scale: c.Scale,
			Train: &api.TrainRequest{Workload: wl},
		})
		return err
	}
}

// PolicyClass lists stored policies — cheap metadata reads.
type PolicyClass struct {
	Client *api.Client
}

func (c *PolicyClass) Name() string { return "policy" }

func (c *PolicyClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		_, err := c.Client.Policies(ctx)
		return err
	}
}

// MetaClass lists experiments — the catalogue read every UI makes.
type MetaClass struct {
	Client *api.Client
}

func (c *MetaClass) Name() string { return "meta" }

func (c *MetaClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		_, err := c.Client.Experiments(ctx)
		return err
	}
}

// WeightedClass pairs a class with its share of the traffic mix.
type WeightedClass struct {
	Class  Class
	Weight float64
}

// BuildMix constructs the weighted class list from a mix spec like
// "read=0.6,simulate=0.2,train=0.05,policy=0.05,meta=0.1". Weights are
// relative, not required to sum to 1. zipfS sets the read class's
// hot-key skew.
func BuildMix(client *api.Client, spec string, tg Targets, zipfS float64) ([]WeightedClass, error) {
	if len(tg.Experiments) == 0 {
		return nil, fmt.Errorf("load: no target experiments")
	}
	if len(tg.Workloads) == 0 {
		tg.Workloads = []string{"mix1"}
	}
	byName := map[string]Class{
		"read":     &ReadClass{Client: client, Targets: tg, S: zipfS},
		"simulate": &SimulateClass{Client: client, Targets: tg},
		"train":    &TrainClass{Client: client, Targets: tg},
		"policy":   &PolicyClass{Client: client},
		"meta":     &MetaClass{Client: client},
	}
	var mix []WeightedClass
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("load: bad mix entry %q (want class=weight)", part)
		}
		cls, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("load: unknown request class %q", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("load: bad weight in %q", part)
		}
		if w == 0 {
			continue
		}
		mix = append(mix, WeightedClass{Class: cls, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("load: mix %q selects no classes", spec)
	}
	// Deterministic class order regardless of spec order, so a run's
	// request sequence is a pure function of (seed, schedule, mix set).
	sort.Slice(mix, func(i, j int) bool { return mix[i].Class.Name() < mix[j].Class.Name() })
	return mix, nil
}

// Prepare seeds the hot-key working set: it launches each target
// experiment once (through a retrying client) and waits for completion,
// so read traffic hits stored results instead of drowning in 404s, and
// repeat simulate traffic exercises the store-hit path. Returns the
// number of simulations the seeding itself spent.
func Prepare(ctx context.Context, c *api.Client, tg Targets) (int64, error) {
	var sims int64
	for _, exp := range tg.Experiments {
		j, err := c.Launch(ctx, api.LaunchRequest{Experiment: exp, Scale: tg.Scale})
		if err != nil {
			return sims, fmt.Errorf("load: prepare %s: %w", exp, err)
		}
		done, err := c.Wait(ctx, j.ID, 50*time.Millisecond)
		if err != nil {
			return sims, fmt.Errorf("load: prepare %s: %w", exp, err)
		}
		if done.Status != api.StatusDone {
			return sims, fmt.Errorf("load: prepare %s: job %s ended %s: %s",
				exp, done.ID, done.Status, done.Error)
		}
		sims += done.Sims
	}
	return sims, nil
}
