package load

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pythia/internal/api"
)

func TestSchedules(t *testing.T) {
	cases := []struct {
		sched Schedule
		at    time.Duration
		want  float64
	}{
		{Constant{RPS: 25}, 0, 25},
		{Constant{RPS: 25}, time.Hour, 25},
		{Ramp{From: 0, To: 100, Over: 10 * time.Second}, 0, 0},
		{Ramp{From: 0, To: 100, Over: 10 * time.Second}, 5 * time.Second, 50},
		{Ramp{From: 0, To: 100, Over: 10 * time.Second}, 20 * time.Second, 100},
		{Burst{Base: 10, Peak: 200, At: 5 * time.Second, For: time.Second}, 0, 10},
		{Burst{Base: 10, Peak: 200, At: 5 * time.Second, For: time.Second}, 5500 * time.Millisecond, 200},
		{Burst{Base: 10, Peak: 200, At: 5 * time.Second, For: time.Second}, 7 * time.Second, 10},
		{Diurnal{Base: 50, Amplitude: 30, Period: 20 * time.Second}, 5 * time.Second, 80},
		{Diurnal{Base: 10, Amplitude: 30, Period: 20 * time.Second}, 15 * time.Second, 0}, // clamped
		{Replay{Points: []Point{{0, 5}, {2, 50}}}, time.Second, 5},
		{Replay{Points: []Point{{0, 5}, {2, 50}}}, 3 * time.Second, 50},
	}
	for _, c := range cases {
		if got := c.sched.RateAt(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s.RateAt(%s) = %g, want %g", c.sched.Name(), c.at, got, c.want)
		}
	}
}

func TestReadReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	os.WriteFile(path, []byte(`[{"at_sec":5,"rps":50},{"at_sec":0,"rps":10}]`), 0o644)
	r, err := ReadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	// Points sort by time; before the first point the rate is zero.
	if got := r.RateAt(time.Second); got != 10 {
		t.Errorf("RateAt(1s) = %g, want 10", got)
	}
	if got := r.RateAt(6 * time.Second); got != 50 {
		t.Errorf("RateAt(6s) = %g, want 50", got)
	}
	if _, err := ReadReplay(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing schedule file should error")
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("read:p95ms=50,p99ms=200,err=0; simulate:shed=0.2")
	if err != nil {
		t.Fatal(err)
	}
	r := slos["read"]
	if r.P95Ms != 50 || r.P99Ms != 200 || r.Err != 0 || r.Shed != -1 || r.P50Ms != -1 {
		t.Errorf("read SLO = %+v", r)
	}
	if s := slos["simulate"]; s.Shed != 0.2 || s.P95Ms != -1 {
		t.Errorf("simulate SLO = %+v", s)
	}
	for _, bad := range []string{"", "read", "read:p95=50", "read:p95ms=x", "read:p95ms=-1"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) should fail", bad)
		}
	}
}

func TestCheckSLOs(t *testing.T) {
	rep := &Report{Classes: []ClassReport{
		{Class: "read", Requests: 100, OK: 98, Shed: 1, Errors: 1, P95Ms: 40},
		{Class: "simulate", Requests: 10, OK: 5, Shed: 5},
	}}
	slos := map[string]SLO{
		"read":     {P50Ms: -1, P95Ms: 50, P99Ms: -1, Err: 0.05, Shed: -1},
		"simulate": {P50Ms: -1, P95Ms: -1, P99Ms: -1, Err: -1, Shed: 0.2},
		"train":    {P50Ms: -1, P95Ms: -1, P99Ms: -1, Err: 0, Shed: -1},
	}
	v := rep.CheckSLOs(slos)
	// read passes; simulate shed rate 0.5 > 0.2; train saw no traffic.
	if len(v) != 2 {
		t.Fatalf("violations = %v, want 2", v)
	}
	if rep.Violations == nil {
		t.Error("violations not recorded on report")
	}
}

func TestQuantiles(t *testing.T) {
	c := &collector{}
	for i := 1; i <= 100; i++ {
		c.record(time.Duration(i)*time.Millisecond, nil)
	}
	c.record(time.Millisecond, &api.Error{Code: api.CodeQueueFull, Retryable: true})
	c.record(time.Millisecond, context.DeadlineExceeded)
	r := c.report("read", 10*time.Second)
	if r.OK != 100 || r.Shed != 1 || r.Errors != 1 || r.Requests != 102 {
		t.Errorf("counts = %+v", r)
	}
	if r.P50Ms < 50 || r.P50Ms > 52 {
		t.Errorf("p50 = %g", r.P50Ms)
	}
	if r.P99Ms < 99 || r.P99Ms > 100 {
		t.Errorf("p99 = %g", r.P99Ms)
	}
	if r.MaxMs != 100 {
		t.Errorf("max = %g", r.MaxMs)
	}
}

func TestBuildMix(t *testing.T) {
	c := api.NewClient("http://127.0.0.1:0", api.WithRetries(0))
	tg := Targets{Experiments: []string{"fig14"}, Scale: "tiny"}
	mix, err := BuildMix(c, "read=0.6, simulate=0.2,meta=0.2,train=0", tg, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-weight classes drop out; survivors sort by name.
	if len(mix) != 3 {
		t.Fatalf("mix has %d classes, want 3", len(mix))
	}
	for i, want := range []string{"meta", "read", "simulate"} {
		if mix[i].Class.Name() != want {
			t.Errorf("mix[%d] = %s, want %s", i, mix[i].Class.Name(), want)
		}
	}
	for _, bad := range []string{"", "bogus=1", "read", "read=x", "read=-1"} {
		if _, err := BuildMix(c, bad, tg, 0); err == nil {
			t.Errorf("BuildMix(%q) should fail", bad)
		}
	}
}

// TestOpenLoopDispatchAgainstStub drives the runner against a stub that
// is instant, checking arrival accounting, per-class partitioning, and
// reproducibility of the offered count from the seed.
func TestOpenLoopDispatchAgainstStub(t *testing.T) {
	run := func(seed int64) *Report {
		cfg := Config{
			Client:          api.NewClient("http://127.0.0.1:0", api.WithRetries(0)),
			Schedule:        Constant{RPS: 200},
			Duration:        500 * time.Millisecond,
			Seed:            seed,
			SkipServerDelta: true,
			Mix: []WeightedClass{
				{Class: stubClass{name: "a"}, Weight: 3},
				{Class: stubClass{name: "b"}, Weight: 1},
			},
		}
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run(7)
	if rep.Offered < 50 || rep.Offered > 200 {
		t.Errorf("offered = %d, want ≈100 (200rps × 0.5s)", rep.Offered)
	}
	var total, aCount int64
	for _, c := range rep.Classes {
		total += c.Requests + c.Dropped
		if c.Class == "a" {
			aCount = c.Requests
		}
		if c.Errors != 0 || c.Shed != 0 {
			t.Errorf("stub class %s saw errors: %+v", c.Class, c)
		}
	}
	if total != rep.Offered {
		t.Errorf("class totals %d != offered %d", total, rep.Offered)
	}
	if frac := float64(aCount) / float64(rep.Offered); frac < 0.5 || frac > 0.95 {
		t.Errorf("class a got %.0f%% of traffic, want ≈75%%", frac*100)
	}
	if again := run(7); again.Offered != rep.Offered {
		t.Errorf("same seed offered %d then %d arrivals", rep.Offered, again.Offered)
	}
}

type stubClass struct{ name string }

func (s stubClass) Name() string { return s.name }
func (s stubClass) Pick(rng *rand.Rand) func(ctx context.Context) error {
	return func(ctx context.Context) error { return nil }
}
