package load

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pythia/internal/api"
)

// Config parameterizes one load run.
type Config struct {
	// Client executes the requests. Use a no-retry client: the harness
	// must observe sheds, not paper over them with backoff.
	Client   *api.Client
	Schedule Schedule
	Duration time.Duration
	Mix      []WeightedClass
	// Seed makes the arrival sequence and per-request parameter choices
	// reproducible.
	Seed int64
	// MaxInFlight bounds concurrent outstanding requests (default 512).
	// Arrivals past the bound are recorded as dropped, not executed — an
	// open-loop generator must not itself become a queue.
	MaxInFlight int
	// RequestTimeout bounds each request (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds how long run waits for stragglers after the
	// last arrival (default 30s).
	DrainTimeout time.Duration
	// SkipServerDelta disables the before/after /healthz sampling.
	SkipServerDelta bool
}

// Run drives the configured traffic against the server and returns the
// measured report. The arrival process is open-loop: a single
// dispatcher goroutine walks the schedule on the wall clock, sampling
// exponential inter-arrival gaps at the instantaneous rate, and fires
// each request in its own goroutine at its arrival time.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("load: Config.Client is required")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("load: Config.Schedule is required")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: Config.Duration must be positive")
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("load: Config.Mix is empty")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}

	var totalWeight float64
	for _, wc := range cfg.Mix {
		totalWeight += wc.Weight
	}

	collectors := make(map[string]*collector, len(cfg.Mix))
	for _, wc := range cfg.Mix {
		collectors[wc.Class.Name()] = &collector{}
	}

	var before api.Health
	haveBefore := false
	if !cfg.SkipServerDelta {
		if h, err := cfg.Client.Health(ctx); err == nil {
			before, haveBefore = h, true
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	elapsed := time.Duration(0)
	var offered int64

dispatch:
	for elapsed < cfg.Duration {
		select {
		case <-ctx.Done():
			break dispatch
		default:
		}
		rate := cfg.Schedule.RateAt(elapsed)
		if rate <= 0 {
			// Idle stretch of the schedule: step forward and re-sample.
			elapsed += 50 * time.Millisecond
			continue
		}
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		elapsed += gap
		if elapsed >= cfg.Duration {
			break
		}
		// Bind the request before sleeping so the choice sequence depends
		// only on the seed, not on scheduling jitter.
		wc := pickClass(rng, cfg.Mix, totalWeight)
		op := wc.Class.Pick(rng)
		col := collectors[wc.Class.Name()]
		offered++

		if wait := start.Add(elapsed).Sub(time.Now()); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				rctx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
				defer cancel()
				t0 := time.Now()
				err := op(rctx)
				col.record(time.Since(t0), err)
			}()
		default:
			// Generator-side overload: the in-flight cap is exhausted, so
			// this arrival is dropped rather than queued (queueing would
			// close the loop and understate latency).
			col.drop()
		}
	}

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
	}
	wall := time.Since(start)

	rep := &Report{
		Schedule:    cfg.Schedule.Name(),
		DurationSec: wall.Seconds(),
		Seed:        cfg.Seed,
		Offered:     offered,
	}
	for _, wc := range cfg.Mix {
		name := wc.Class.Name()
		rep.Classes = append(rep.Classes, collectors[name].report(name, wall))
	}
	if haveBefore {
		if after, err := cfg.Client.Health(ctx); err == nil {
			rep.Server = serverDelta(before, after)
		}
	}
	return rep, nil
}

func pickClass(rng *rand.Rand, mix []WeightedClass, total float64) WeightedClass {
	x := rng.Float64() * total
	for _, wc := range mix {
		if x < wc.Weight {
			return wc
		}
		x -= wc.Weight
	}
	return mix[len(mix)-1]
}

// collector accumulates one class's outcomes. Latencies are kept only
// for successful requests: a shed answers in microseconds and an error
// may answer instantly, and mixing those into the quantiles would make
// an overloaded server look fast.
type collector struct {
	mu        sync.Mutex
	latencies []float64 // ms, successful requests only
	ok        int64
	shed      int64
	errs      int64
	dropped   int64
}

func (c *collector) record(d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.ok++
		c.latencies = append(c.latencies, float64(d)/float64(time.Millisecond))
	case api.IsShed(err):
		c.shed++
	default:
		c.errs++
	}
}

func (c *collector) drop() {
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
}

func (c *collector) report(name string, wall time.Duration) ClassReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := ClassReport{
		Class:    name,
		Requests: c.ok + c.shed + c.errs,
		OK:       c.ok,
		Shed:     c.shed,
		Errors:   c.errs,
		Dropped:  c.dropped,
	}
	if wall > 0 {
		r.RPS = float64(r.Requests) / wall.Seconds()
	}
	if n := len(c.latencies); n > 0 {
		sorted := append([]float64(nil), c.latencies...)
		sortFloats(sorted)
		r.P50Ms = quantile(sorted, 0.50)
		r.P95Ms = quantile(sorted, 0.95)
		r.P99Ms = quantile(sorted, 0.99)
		r.MaxMs = sorted[n-1]
		sum := 0.0
		for _, v := range sorted {
			sum += v
		}
		r.MeanMs = sum / float64(n)
	}
	return r
}

func serverDelta(before, after api.Health) *ServerDelta {
	d := &ServerDelta{Sims: after.Sims - before.Sims}
	b, a := before.Stores["results"], after.Stores["results"]
	d.StoreHits = a.Hits - b.Hits
	d.StoreMisses = a.Misses - b.Misses
	return d
}
