package load_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"pythia/internal/api"
	"pythia/internal/harness"
	"pythia/internal/load"
	"pythia/internal/results"
	"pythia/internal/serve"
)

var tinyScale = harness.Scale{Warmup: 50_000, Sim: 200_000, TraceLen: 40_000, WorkloadsPerSuite: 1, HeteroMixes: 1}

// TestLoadAgainstLiveServe is the harness acceptance test: prepare hot
// keys on a real serve instance, run a constant-RPS mixed read/meta/
// simulate storm, and verify (a) the per-class report is coherent,
// (b) declared SLOs evaluate, and (c) the result store absorbed the
// repeat traffic — store hits climbed while the run caused zero new
// simulations (the cache-hit-storm proof).
func TestLoadAgainstLiveServe(t *testing.T) {
	harness.ResetCaches()
	defer harness.ResetCaches()
	srv, err := serve.New(serve.Config{
		Store:       results.Open(t.TempDir()),
		QueueDepth:  64,
		ExtraScales: map[string]harness.Scale{"tiny": tinyScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	targets := load.Targets{Experiments: []string{"fig14", "table2"}, Scale: "tiny"}
	prepClient := api.NewClient(ts.URL) // retrying: seeding must succeed
	prepSims, err := load.Prepare(ctx, prepClient, targets)
	if err != nil {
		t.Fatal(err)
	}
	if prepSims == 0 {
		t.Fatal("prepare ran no simulations — hot keys were not seeded")
	}

	loadClient := api.NewClient(ts.URL, api.WithRetries(0))
	mix, err := load.BuildMix(loadClient, "read=0.7,meta=0.15,simulate=0.15", targets, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := load.Run(ctx, load.Config{
		Client:   loadClient,
		Schedule: load.Constant{RPS: 80},
		Duration: 2 * time.Second,
		Mix:      mix,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.PrepareSims = prepSims

	var read, sim load.ClassReport
	for _, c := range rep.Classes {
		switch c.Class {
		case "read":
			read = c
		case "simulate":
			sim = c
		}
	}
	if read.OK == 0 {
		t.Fatalf("no successful reads: %+v\n%s", read, rep.Render())
	}
	if read.Errors > 0 {
		t.Errorf("read errors against seeded keys: %+v", read)
	}
	if read.P50Ms <= 0 || read.P95Ms < read.P50Ms || read.P99Ms < read.P95Ms {
		t.Errorf("incoherent quantiles: %+v", read)
	}
	if sim.OK == 0 {
		t.Errorf("no successful simulate launches: %+v", sim)
	}

	// The storm must be absorbed by the store: hits climbed, and the
	// repeat traffic (reads + re-launches of seeded experiments) caused
	// zero new simulation work.
	if rep.Server == nil {
		t.Fatal("no server delta recorded")
	}
	if rep.Server.StoreHits == 0 {
		t.Errorf("store hits did not climb during hit storm: %+v", rep.Server)
	}
	if rep.Server.Sims != 0 {
		t.Errorf("hit storm caused %d simulations, want 0", rep.Server.Sims)
	}

	// SLO machinery end to end: generous bounds pass, absurd ones fail.
	pass, err := load.ParseSLOs("read:p95ms=10000,err=0;simulate:err=0")
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.CheckSLOs(pass); len(v) != 0 {
		t.Errorf("generous SLOs violated: %v\n%s", v, rep.Render())
	}
	strict, _ := load.ParseSLOs("read:p99ms=0.000001")
	if v := rep.CheckSLOs(strict); len(v) == 0 {
		t.Error("absurd SLO not flagged")
	}
}
