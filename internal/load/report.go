package load

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Report is one load run's measurements — the `loadtest` section of
// BENCH_*.json, so serving performance rides the same regression-diff
// trajectory as wall-clock benchmarks.
type Report struct {
	Schedule    string  `json:"schedule"`
	DurationSec float64 `json:"duration_seconds"`
	Seed        int64   `json:"seed"`
	// Offered is how many arrivals the schedule generated (executed +
	// dropped at the in-flight cap).
	Offered int64         `json:"offered"`
	Classes []ClassReport `json:"classes"`
	// Server is the /healthz delta across the run: how much simulation
	// work and store traffic the synthetic load actually caused. The
	// cache-hit-storm proof lives here — repeat traffic shows hits
	// climbing while sims stay near zero.
	Server *ServerDelta `json:"server,omitempty"`
	// PrepareSims is what seeding the hot keys cost before measurement.
	PrepareSims int64 `json:"prepare_sims,omitempty"`
	// Violations lists every SLO the run broke (empty = pass).
	Violations []string `json:"violations,omitempty"`
}

// ClassReport is one request class's measured behavior. Latency
// quantiles cover successful requests only; sheds and errors are rated
// separately — a 503 in 200µs must not improve the p50.
type ClassReport struct {
	Class    string  `json:"class"`
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Errors   int64   `json:"errors"`
	Dropped  int64   `json:"dropped,omitempty"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// ShedRate is the fraction of issued requests the server shed.
func (c ClassReport) ShedRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.Shed) / float64(c.Requests)
}

// ErrRate is the fraction of issued requests that failed (non-shed).
func (c ClassReport) ErrRate() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.Errors) / float64(c.Requests)
}

// ServerDelta is the server-side /healthz movement across the run.
type ServerDelta struct {
	Sims        int64 `json:"sims"`
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
}

// SLO declares per-class bounds. Negative fields are "not declared".
type SLO struct {
	P50Ms float64
	P95Ms float64
	P99Ms float64
	// Err and Shed are maximum acceptable rates in [0,1].
	Err  float64
	Shed float64
}

// ParseSLOs parses a declaration like
//
//	"read:p95ms=50,p99ms=200,err=0;simulate:shed=0.2,err=0.01"
//
// — per-class clauses separated by ';', each a class name, ':', and
// comma-separated bound=value pairs. Known bounds: p50ms, p95ms, p99ms,
// err, shed.
func ParseSLOs(spec string) (map[string]SLO, error) {
	out := map[string]SLO{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, bounds, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("load: bad SLO clause %q (want class:bound=value,...)", clause)
		}
		slo := SLO{P50Ms: -1, P95Ms: -1, P99Ms: -1, Err: -1, Shed: -1}
		for _, pair := range strings.Split(bounds, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			key, val, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, fmt.Errorf("load: bad SLO bound %q in %q", pair, clause)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("load: bad SLO value %q in %q", val, clause)
			}
			switch strings.ToLower(strings.TrimSpace(key)) {
			case "p50ms":
				slo.P50Ms = f
			case "p95ms":
				slo.P95Ms = f
			case "p99ms":
				slo.P99Ms = f
			case "err":
				slo.Err = f
			case "shed":
				slo.Shed = f
			default:
				return nil, fmt.Errorf("load: unknown SLO bound %q (want p50ms/p95ms/p99ms/err/shed)", key)
			}
		}
		out[strings.TrimSpace(name)] = slo
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load: SLO spec %q declares nothing", spec)
	}
	return out, nil
}

// CheckSLOs evaluates the declared bounds against the report, records
// the violations on it, and returns them. A declared class that saw no
// traffic is itself a violation — an SLO on traffic that never flowed
// is a misconfigured test, and silence would read as a pass.
func (r *Report) CheckSLOs(slos map[string]SLO) []string {
	byClass := map[string]ClassReport{}
	for _, c := range r.Classes {
		byClass[c.Class] = c
	}
	var names []string
	for name := range slos {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		slo := slos[name]
		c, ok := byClass[name]
		if !ok || c.Requests == 0 {
			violations = append(violations,
				fmt.Sprintf("%s: SLO declared but class saw no traffic", name))
			continue
		}
		check := func(bound, got float64, label string) {
			if bound >= 0 && got > bound {
				violations = append(violations,
					fmt.Sprintf("%s: %s %.2f exceeds SLO %.2f", name, label, got, bound))
			}
		}
		check(slo.P50Ms, c.P50Ms, "p50_ms")
		check(slo.P95Ms, c.P95Ms, "p95_ms")
		check(slo.P99Ms, c.P99Ms, "p99_ms")
		check(slo.Err, c.ErrRate(), "error rate")
		check(slo.Shed, c.ShedRate(), "shed rate")
	}
	r.Violations = violations
	return violations
}

// Render formats the report as an aligned text table for terminals.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s  wall %.1fs  offered %d  seed %d\n",
		r.Schedule, r.DurationSec, r.Offered, r.Seed)
	fmt.Fprintf(&b, "%-10s %8s %8s %6s %6s %7s %8s %9s %9s %9s\n",
		"class", "requests", "ok", "shed", "errs", "rps", "p50ms", "p95ms", "p99ms", "maxms")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-10s %8d %8d %6d %6d %7.1f %8.2f %9.2f %9.2f %9.2f\n",
			c.Class, c.Requests, c.OK, c.Shed, c.Errors, c.RPS, c.P50Ms, c.P95Ms, c.P99Ms, c.MaxMs)
	}
	if r.Server != nil {
		fmt.Fprintf(&b, "server: sims %+d, store hits %+d, misses %+d\n",
			r.Server.Sims, r.Server.StoreHits, r.Server.StoreMisses)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "SLO VIOLATION: %s\n", v)
	}
	return b.String()
}

// sortFloats and quantile implement exact (nearest-rank) quantiles over
// the retained per-request latencies; load-test sample counts are small
// enough that exactness beats a streaming sketch.
func sortFloats(v []float64) { sort.Float64s(v) }

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
