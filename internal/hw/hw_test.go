package hw

import (
	"math"
	"testing"

	"pythia/internal/core"
)

func TestPythiaStorageMatchesTable4(t *testing.T) {
	items := PythiaStorage(core.BasicConfig())
	if len(items) != 2 {
		t.Fatalf("expected QVStore+EQ, got %d items", len(items))
	}
	byName := map[string]Storage{}
	for _, s := range items {
		byName[s.Name] = s
	}
	if kb := byName["QVStore"].KB(); kb != 24 {
		t.Errorf("QVStore = %v KB, want 24", kb)
	}
	if kb := byName["EQ"].KB(); kb != 1.5 {
		t.Errorf("EQ = %v KB, want 1.5", kb)
	}
	if total := TotalKB(items); total != 25.5 {
		t.Errorf("total = %v KB, want 25.5 (Table 4)", total)
	}
}

func TestAreaPowerCalibration(t *testing.T) {
	// The model must reproduce the paper's synthesis numbers at the
	// calibration point.
	if a := AreaMM2(paperStorageKB); math.Abs(a-paperAreaMM2) > 0.01 {
		t.Errorf("area at calibration point = %v, want %v", a, paperAreaMM2)
	}
	if p := PowerMW(paperStorageKB); math.Abs(p-paperPowerMW) > 0.5 {
		t.Errorf("power at calibration point = %v, want %v", p, paperPowerMW)
	}
	// Monotonic in storage.
	if AreaMM2(50) <= AreaMM2(10) || PowerMW(50) <= PowerMW(10) {
		t.Error("area/power must grow with storage")
	}
}

func TestOverheadMatchesTable8(t *testing.T) {
	kb := TotalKB(PythiaStorage(core.BasicConfig()))
	procs := ReferenceProcessors()
	if len(procs) != 3 {
		t.Fatalf("expected 3 reference processors")
	}
	// 4-core desktop part: paper reports 1.03% area, 0.37% power.
	a, p := Overhead(kb, procs[0])
	if a < 0.005 || a > 0.02 {
		t.Errorf("4-core area overhead %.4f, want ~0.0103", a)
	}
	if p < 0.002 || p > 0.008 {
		t.Errorf("4-core power overhead %.4f, want ~0.0037", p)
	}
	// Overheads must grow with core count faster than die area in these
	// parts (paper: 1.03% -> 1.33%).
	a28, _ := Overhead(kb, procs[2])
	if a28 <= a {
		t.Errorf("28-core overhead %.4f should exceed 4-core %.4f", a28, a)
	}
}

func TestBaselineStorageBudgets(t *testing.T) {
	b := BaselineStorageKB()
	if b["Pythia"] != 25.5 {
		t.Errorf("Pythia budget %v", b["Pythia"])
	}
	if b["Bingo"] <= b["SPP"] {
		t.Error("Bingo should be larger than SPP (Table 7)")
	}
	// Pythia is less than half the combined budget of the five baselines
	// (§6.3.1).
	combined := b["SPP"] + b["Bingo"] + b["MLOP"] + b["DSPatch"]
	if b["Pythia"] >= combined/2 {
		t.Errorf("Pythia %v KB not under half of combined %v KB", b["Pythia"], combined)
	}
}
