// Package hw provides an analytical hardware-cost model for Pythia and the
// baseline prefetchers: metadata storage (Table 4, Table 7) and a
// synthesis-calibrated area/power estimate (Table 8). The paper measures
// area and power from Chisel RTL synthesized with a 14nm library; this
// model reproduces the published numbers from first principles (SRAM
// bit-counts plus a fixed logic overhead calibrated so the basic Pythia
// configuration lands on the paper's 0.33 mm²/55.11 mW).
package hw

import (
	"fmt"

	"pythia/internal/core"
)

// Storage describes a hardware structure's metadata budget.
type Storage struct {
	Name        string
	Description string
	Bits        int
}

// KB returns the size in kilobytes.
func (s Storage) KB() float64 { return float64(s.Bits) / 8 / 1024 }

// PythiaStorage itemizes Pythia's storage for a configuration,
// reproducing Table 4 (25.5 KB for the basic configuration).
func PythiaStorage(cfg core.Config) []Storage {
	qvBits := len(cfg.Features) * cfg.PlanesPerVault * cfg.FeatureDim * len(cfg.Actions) * 16
	// EQ entry: state (21b) + action index (5b) + reward (5b) + filled (1b)
	// + address (16b) = 48b, per Table 4.
	eqBits := cfg.EQSize * (21 + 5 + 5 + 1 + 16)
	return []Storage{
		{
			Name: "QVStore",
			Description: fmt.Sprintf("%d vaults × %d planes × %d entries × 16b Q-value",
				len(cfg.Features), cfg.PlanesPerVault, cfg.FeatureDim*len(cfg.Actions)),
			Bits: qvBits,
		},
		{
			Name:        "EQ",
			Description: fmt.Sprintf("%d entries × 48b (state 21b + action 5b + reward 5b + filled 1b + address 16b)", cfg.EQSize),
			Bits:        eqBits,
		},
	}
}

// TotalKB sums a storage list in KB.
func TotalKB(items []Storage) float64 {
	var b int
	for _, s := range items {
		b += s.Bits
	}
	return float64(b) / 8 / 1024
}

// Calibration constants: the paper reports 0.33 mm² and 55.11 mW for the
// 25.5 KB basic Pythia in GlobalFoundries 14nm, with the QVStore at 90.4%
// of area and 95.6% of power. We derive per-KB SRAM costs from those
// figures and treat the remainder as fixed pipeline logic.
const (
	paperAreaMM2    = 0.33
	paperPowerMW    = 55.11
	paperStorageKB  = 25.5
	sramAreaPerKB   = paperAreaMM2 * 0.904 / paperStorageKB // mm²/KB
	sramPowerPerKB  = paperPowerMW * 0.956 / paperStorageKB // mW/KB
	logicAreaFixed  = paperAreaMM2 * 0.096
	logicPowerFixed = paperPowerMW * 0.044
)

// AreaMM2 estimates prefetcher area from its storage budget.
func AreaMM2(storageKB float64) float64 { return storageKB*sramAreaPerKB + logicAreaFixed }

// PowerMW estimates prefetcher power from its storage budget.
func PowerMW(storageKB float64) float64 { return storageKB*sramPowerPerKB + logicPowerFixed }

// Processor describes a reference CPU for overhead comparisons (Table 8).
type Processor struct {
	Name    string
	Cores   int
	DieMM2  float64
	TDPWatt float64
}

// ReferenceProcessors returns the paper's Table 8 comparison points
// (die areas from public die-shot analyses of the respective Skylake
// parts; the overhead percentages reproduce the paper's).
func ReferenceProcessors() []Processor {
	return []Processor{
		{Name: "4-core Skylake D-2123IT, 60W TDP", Cores: 4, DieMM2: 128, TDPWatt: 60},
		{Name: "18-core Skylake 6150, 165W TDP", Cores: 18, DieMM2: 485, TDPWatt: 165},
		{Name: "28-core Skylake 8180M, 205W TDP", Cores: 28, DieMM2: 694, TDPWatt: 205},
	}
}

// Overhead computes the area and power overhead (fractions) of deploying
// one prefetcher instance per core of proc.
func Overhead(storageKB float64, proc Processor) (areaFrac, powerFrac float64) {
	a := AreaMM2(storageKB) * float64(proc.Cores)
	p := PowerMW(storageKB) * float64(proc.Cores)
	return a / proc.DieMM2, p / 1000 / proc.TDPWatt
}

// BaselineStorageKB returns the metadata budgets of the evaluated
// baseline prefetchers (paper Table 7).
func BaselineStorageKB() map[string]float64 {
	return map[string]float64{
		"SPP":     6.2,
		"Bingo":   46.0,
		"MLOP":    8.0,
		"DSPatch": 3.6,
		"SPP+PPF": 39.3 + 6.2,
		"Pythia":  TotalKB(PythiaStorage(core.BasicConfig())),
	}
}
