// Package flight provides a minimal generic singleflight: concurrent
// calls for the same key are deduplicated so the first caller does the
// work while everyone else blocks and shares the result. It is the one
// implementation behind the harness's run/trace deduplication, the
// stream trace cache's population, and the result store's compute path.
package flight

import "sync"

// Group deduplicates concurrent Do calls per key. The zero value is
// ready to use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn for key unless a call for the same key is already in
// flight, in which case it blocks and returns that call's result.
// Both the value and the error propagate to every caller; fn may
// return a usable value alongside a non-nil error (partial success,
// e.g. "computed but not persisted") and Do passes both through
// unchanged. leader reports whether this caller executed fn. The key
// is released once fn returns, so a later Do runs fn again — errors
// are not cached.
func (g *Group[V]) Do(key string, fn func() (V, error)) (val V, leader bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, false, c.err
	}
	c := new(call[V])
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	return c.val, true, c.err
}
