package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoDeduplicates(t *testing.T) {
	// The regression this guards: two concurrent cache-missing callers
	// used to run the identical expensive operation twice.
	var g Group[int]
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg, arrived sync.WaitGroup
	results := make([]int, waiters)
	leaders := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			results[i], leaders[i], _ = g.Do("key", func() (int, error) {
				calls.Add(1)
				<-release // hold every other caller in the flight
				return 42, nil
			})
		}()
	}
	// Release only after every goroutine is at (or microseconds from) its
	// Do() call, so all of them join the in-flight leader.
	arrived.Wait()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times for one key, want 1", got)
	}
	nLeaders := 0
	for i := range results {
		if results[i] != 42 {
			t.Errorf("caller %d got %v", i, results[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Errorf("%d callers claim leadership, want 1", nLeaders)
	}
	// The key is released afterwards: a later call runs again.
	if _, leader, _ := g.Do("key", func() (int, error) { calls.Add(1); return 0, nil }); !leader {
		t.Error("post-completion caller was not the leader")
	}
	if calls.Load() != 2 {
		t.Error("flight key not released after completion")
	}
}

func TestDistinctKeysRunConcurrently(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	block := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do("a", func() (string, error) { <-block; return "a", nil })
	}()
	// While "a" is in flight, "b" must not wait on it.
	done := make(chan struct{})
	go func() {
		g.Do("b", func() (string, error) { return "b", nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do(b) blocked behind in-flight Do(a)")
	}
	close(block)
	wg.Wait()
}

// TestErrorsPropagateToWaiters: a leader's error reaches every caller that
// joined its flight, alongside any partial value, and is not cached — the
// next call after completion runs fn again.
func TestErrorsPropagateToWaiters(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg, arrived sync.WaitGroup
	const waiters = 4
	errs := make([]error, waiters)
	vals := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			vals[i], _, errs[i] = g.Do("key", func() (int, error) {
				<-release
				return 7, boom // partial success: value and error together
			})
		}()
	}
	arrived.Wait()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], boom) {
			t.Errorf("caller %d error = %v, want boom", i, errs[i])
		}
		if vals[i] != 7 {
			t.Errorf("caller %d lost the partial value: %d", i, vals[i])
		}
	}
	if _, leader, err := g.Do("key", func() (int, error) { return 1, nil }); err != nil || !leader {
		t.Errorf("error was cached across flights: err=%v leader=%v", err, leader)
	}
}
