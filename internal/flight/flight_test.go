package flight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoDeduplicates(t *testing.T) {
	// The regression this guards: two concurrent cache-missing callers
	// used to run the identical expensive operation twice.
	var g Group[int]
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg, arrived sync.WaitGroup
	results := make([]int, waiters)
	leaders := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done()
			results[i], leaders[i] = g.Do("key", func() int {
				calls.Add(1)
				<-release // hold every other caller in the flight
				return 42
			})
		}()
	}
	// Release only after every goroutine is at (or microseconds from) its
	// Do() call, so all of them join the in-flight leader.
	arrived.Wait()
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times for one key, want 1", got)
	}
	nLeaders := 0
	for i := range results {
		if results[i] != 42 {
			t.Errorf("caller %d got %v", i, results[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Errorf("%d callers claim leadership, want 1", nLeaders)
	}
	// The key is released afterwards: a later call runs again.
	if _, leader := g.Do("key", func() int { calls.Add(1); return 0 }); !leader {
		t.Error("post-completion caller was not the leader")
	}
	if calls.Load() != 2 {
		t.Error("flight key not released after completion")
	}
}

func TestDistinctKeysRunConcurrently(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	block := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do("a", func() string { <-block; return "a" })
	}()
	// While "a" is in flight, "b" must not wait on it.
	done := make(chan struct{})
	go func() {
		g.Do("b", func() string { return "b" })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do(b) blocked behind in-flight Do(a)")
	}
	close(block)
	wg.Wait()
}
