package obs

import (
	"context"
	"sync"
	"time"
)

// Timeline records the stages a job passes through — accepted, queued,
// leased, streaming, simulating, persisting, and a terminal state — with
// wall-clock timestamps, so a slow job is diagnosable from the status API
// alone. It is carried through the stack inside a context (WithTimeline /
// TimelineFrom); every method is safe on a nil receiver, so layers below
// serve can Mark unconditionally and pay nothing when no timeline rides
// the context (bench, CLI, and test paths).
//
// Mark records a stage only the first time it is seen since the last
// Barrier: the harness fans a job out across workers, and only the first
// worker to reach "simulating" defines when the job entered that stage.
// Barrier always records and resets the seen set — serve uses it at
// attempt boundaries ("leased") and terminal states, so a retried job's
// timeline shows each attempt's stages in order.
type Timeline struct {
	mu     sync.Mutex
	stages []Stage
	seen   map[string]bool
}

// Stage is one recorded timeline entry.
type Stage struct {
	Name string
	At   time.Time
}

// NewTimeline returns a timeline with an initial stage recorded at now.
func NewTimeline(initial string, now time.Time) *Timeline {
	t := &Timeline{seen: make(map[string]bool)}
	t.Barrier(initial, now)
	return t
}

// Mark records stage at now unless it was already recorded since the last
// Barrier. Nil-safe.
func (t *Timeline) Mark(stage string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seen[stage] {
		return
	}
	t.seen[stage] = true
	t.stages = append(t.stages, Stage{Name: stage, At: now})
}

// Barrier records stage unconditionally and clears the dedup set, opening
// a new attempt window. Nil-safe.
func (t *Timeline) Barrier(stage string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen = map[string]bool{stage: true}
	t.stages = append(t.stages, Stage{Name: stage, At: now})
}

// StageView is one timeline entry as surfaced in job-status JSON: when the
// stage began and how long until the next stage began (or until `until`
// for the last entry — the job's terminal time for finished jobs, now for
// live ones).
type StageView struct {
	Stage           string    `json:"stage"`
	At              time.Time `json:"at"`
	DurationSeconds float64   `json:"duration_seconds"`
}

// Snapshot returns the recorded stages with durations computed against the
// next stage (the final stage's duration runs to `until`, clamped at >= 0).
// Nil-safe: a nil timeline snapshots to nil.
func (t *Timeline) Snapshot(until time.Time) []StageView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	stages := append([]Stage(nil), t.stages...)
	t.mu.Unlock()
	out := make([]StageView, len(stages))
	for i, s := range stages {
		end := until
		if i+1 < len(stages) {
			end = stages[i+1].At
		}
		d := end.Sub(s.At).Seconds()
		if d < 0 {
			d = 0
		}
		out[i] = StageView{Stage: s.Name, At: s.At, DurationSeconds: d}
	}
	return out
}

type timelineKey struct{}

// WithTimeline attaches t to the context for layers below to Mark.
func WithTimeline(ctx context.Context, t *Timeline) context.Context {
	return context.WithValue(ctx, timelineKey{}, t)
}

// TimelineFrom extracts the timeline riding ctx, or nil (whose methods are
// all no-ops) when none was attached.
func TimelineFrom(ctx context.Context) *Timeline {
	t, _ := ctx.Value(timelineKey{}).(*Timeline)
	return t
}
