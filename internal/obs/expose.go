package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines per family,
// one sample line per labeled series, histogram families expanded into
// cumulative _bucket series (le labels, +Inf last) plus _sum and _count.
// Families are ordered by name, so output is deterministic for a given
// registry state — the round-trip tests depend on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Gather() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, m := range f.Metrics {
			if m.Hist != nil {
				if err := writeHist(w, f.Name, m.Labels, m.Hist); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(m.Labels), formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, labels Labels, h *HistSnapshot) error {
	var cum int64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		ls := append(append(Labels(nil), labels...), Label{Name: "le", Value: formatValue(b)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(ls), cum); err != nil {
			return err
		}
	}
	ls := append(append(Labels(nil), labels...), Label{Name: "le", Value: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(ls), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(labels), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels), h.Count)
	return err
}

// renderLabels formats {a="b",c="d"}; empty label sets render as nothing.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable float, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
