// Package obs is the zero-dependency telemetry layer: a process-wide
// metrics registry (atomic counters, gauges, fixed-bucket histograms with
// server-side quantile estimation) exposed in Prometheus text format, plus
// per-job stage timelines threaded through contexts.
//
// Design constraints, in order:
//
//   - No third-party modules. The registry implements the minimal subset
//     of the Prometheus data model the fleet and load-harness roadmap
//     items need: counter, gauge, histogram, with flat label sets.
//   - Hot paths pay one atomic op. Counter.Add and Histogram.Observe are
//     lock-free; registration (which takes a mutex) happens once per
//     metric, at package init or service construction.
//   - Latency is exported as distributions, never point estimates: the
//     Su et al. uncertainty caveat adopted in PR 5 applies to serving
//     metrics too, so histograms carry full bucket vectors from which
//     p50/p95/p99 are derivable (Quantile estimates them server-side for
//     /healthz; Prometheus' histogram_quantile works off the buckets).
//   - Func-backed metrics (CounterFunc, GaugeFunc) read existing sources
//     of truth (harness.SimCount, queue lengths, breaker state) instead
//     of duplicating them; re-registering one replaces the callback, so
//     services rebuilt in tests always expose the live instance.
//
// Metric naming follows the Prometheus convention, namespaced under
// pythia_<subsystem>_: pythia_serve_* (job lifecycle), pythia_store_*
// (content-addressed stores, labeled by store), pythia_stream_* (trace
// delivery pipeline), pythia_sim_* (simulation kernel), pythia_http_*
// (request routing). DESIGN.md "Observability" documents every signal.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric.
type Label struct {
	Name  string
	Value string
}

// Labels is an ordered label set. Order is preserved as given; identity
// (for registration and lookup) is the ordered (name,value) sequence.
type Labels []Label

// L builds a Labels from alternating name, value pairs; an odd trailing
// name is dropped.
func L(pairs ...string) Labels {
	ls := make(Labels, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		ls = append(ls, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return ls
}

// key renders the identity of a label set.
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// Get returns the value of a label by name ("" when absent).
func (ls Labels) Get(name string) string {
	for _, l := range ls {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Counter is a monotonically increasing metric. The zero value is usable
// but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; contention is rare — gauges
// track slow-moving quantities like subscriber counts).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation counts per upper
// bound plus a +Inf overflow bucket, a running sum, and a total count.
// Observe is lock-free (binary search + one atomic add per call).
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket that holds the target rank — the same estimate
// Prometheus' histogram_quantile computes from the exported buckets. An
// empty histogram reports 0; ranks landing in the +Inf bucket report the
// highest finite bound (the estimate is saturated, not extrapolated).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: saturate at the largest finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot copies the histogram's state for exposition.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// LatencyBuckets is the default histogram bucket layout for durations in
// seconds: sub-millisecond store hits through multi-minute full-scale
// experiment renders.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// RateBuckets is the default layout for simulated-instructions-per-second
// observations: 100k/s (a pathological run) through 1G/s.
var RateBuckets = []float64{
	1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8, 1e9,
}

// metricKind discriminates what backs one registered metric.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFunc
	kindHistogram
)

// metric is one registered (labels, backing) pair within a family.
type metric struct {
	labels  Labels
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every metric sharing one name (and therefore one type and
// help string).
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	metrics map[string]*metric
	order   []string // registration order of label keys
}

// Registry holds metric families and renders them for exposition. The
// zero value is not usable; use NewRegistry or the package-level Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level helpers
// register into and /metrics exposes.
func Default() *Registry { return defaultRegistry }

// fam returns (creating if needed) the family for name. A name collision
// across types keeps the first registration's type; the caller then gets
// a detached metric (see getOrCreate) so misuse cannot corrupt exposition.
func (r *Registry) fam(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]*metric)}
		r.families[name] = f
	}
	return f
}

// getOrCreate installs m under labels unless an entry of the right kind
// already exists (returned instead), or the family's type conflicts
// (m stays detached: usable by the caller, invisible to exposition).
func (r *Registry) getOrCreate(name, help, typ string, labels Labels, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typ)
	if f.typ != typ {
		return mk()
	}
	k := labels.key()
	if m, ok := f.metrics[k]; ok && m.kind == kind {
		return m
	}
	m := mk()
	if _, ok := f.metrics[k]; !ok {
		f.order = append(f.order, k)
	}
	f.metrics[k] = m
	return m
}

// Counter returns the counter registered under name+labels, creating and
// registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.getOrCreate(name, help, "counter", labels, kindCounter, func() *metric {
		return &metric{labels: labels, kind: kindCounter, counter: &Counter{}}
	})
	return m.counter
}

// Gauge returns the gauge registered under name+labels, creating and
// registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.getOrCreate(name, help, "gauge", labels, kindGauge, func() *metric {
		return &metric{labels: labels, kind: kindGauge, gauge: &Gauge{}}
	})
	return m.gauge
}

// CounterFunc registers (or replaces) a counter whose value is read from
// fn at exposition time — the pattern for counters that already exist as
// authoritative atomics elsewhere (harness.SimCount, journal write
// errors). Replacement semantics make re-wiring idempotent: a service
// rebuilt in tests re-registers and the callback follows the live
// instance.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "counter", labels, fn)
}

// GaugeFunc registers (or replaces) a gauge whose value is read from fn
// at exposition time (queue depths, breaker states, store entry counts).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "gauge", labels, fn)
}

func (r *Registry) registerFunc(name, help, typ string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typ)
	if f.typ != typ {
		return
	}
	k := labels.key()
	if _, ok := f.metrics[k]; !ok {
		f.order = append(f.order, k)
	}
	f.metrics[k] = &metric{labels: labels, kind: kindFunc, fn: fn}
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given bucket upper bounds on first use (later calls reuse
// the first registration's buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	m := r.getOrCreate(name, help, "histogram", labels, kindHistogram, func() *metric {
		return &metric{labels: labels, kind: kindHistogram, hist: newHistogram(buckets)}
	})
	return m.hist
}

// --- Snapshots ---

// FamilySnapshot is one metric family captured at a point in time.
type FamilySnapshot struct {
	Name    string
	Help    string
	Type    string
	Metrics []MetricSnapshot
}

// MetricSnapshot is one labeled series within a family. Hist is non-nil
// only for histogram families (Value is then unused).
type MetricSnapshot struct {
	Labels Labels
	Value  float64
	Hist   *HistSnapshot
}

// HistSnapshot is a histogram's state: per-bucket (non-cumulative)
// counts aligned with Bounds plus a final +Inf bucket, the sum of
// observations, and the total count.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Gather snapshots every registered family, sorted by name (metrics keep
// registration order, which is deterministic per process). Func-backed
// metrics are evaluated here, outside the registry lock ordering concerns
// of their owners — callbacks must not re-enter the registry.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Copy the metric lists under the lock; values are read after release
	// so slow callbacks never stall registration.
	type pending struct {
		f  *family
		ms []*metric
	}
	pend := make([]pending, 0, len(fams))
	for _, f := range fams {
		ms := make([]*metric, 0, len(f.order))
		for _, k := range f.order {
			ms = append(ms, f.metrics[k])
		}
		pend = append(pend, pending{f: f, ms: ms})
	}
	r.mu.Unlock()

	sort.Slice(pend, func(i, j int) bool { return pend[i].f.name < pend[j].f.name })
	out := make([]FamilySnapshot, 0, len(pend))
	for _, p := range pend {
		fs := FamilySnapshot{Name: p.f.name, Help: p.f.help, Type: p.f.typ}
		for _, m := range p.ms {
			ms := MetricSnapshot{Labels: m.labels}
			switch m.kind {
			case kindCounter:
				ms.Value = float64(m.counter.Value())
			case kindGauge:
				ms.Value = m.gauge.Value()
			case kindFunc:
				ms.Value = m.fn()
			case kindHistogram:
				s := m.hist.snapshot()
				ms.Hist = &s
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		out = append(out, fs)
	}
	return out
}

// Value looks up the current value of a counter, gauge or func metric by
// name and exact label set (histograms report their observation count).
// Intended for tests and status endpoints, not hot paths.
func (r *Registry) Value(name string, labels Labels) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	var m *metric
	if ok {
		m, ok = f.metrics[labels.key()]
	}
	r.mu.Unlock()
	if !ok || m == nil {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value()), true
	case kindGauge:
		return m.gauge.Value(), true
	case kindFunc:
		return m.fn(), true
	case kindHistogram:
		return float64(m.hist.Count()), true
	}
	return 0, false
}

// --- Package-level helpers over the Default registry ---

// GetCounter returns a registered counter on the default registry.
func GetCounter(name, help string, labels Labels) *Counter {
	return defaultRegistry.Counter(name, help, labels)
}

// GetGauge returns a registered gauge on the default registry.
func GetGauge(name, help string, labels Labels) *Gauge {
	return defaultRegistry.Gauge(name, help, labels)
}

// GetHistogram returns a registered histogram on the default registry.
func GetHistogram(name, help string, buckets []float64, labels Labels) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets, labels)
}

// RegisterCounterFunc registers a func-backed counter on the default
// registry.
func RegisterCounterFunc(name, help string, labels Labels, fn func() float64) {
	defaultRegistry.CounterFunc(name, help, labels, fn)
}

// RegisterGaugeFunc registers a func-backed gauge on the default
// registry.
func RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) {
	defaultRegistry.GaugeFunc(name, help, labels, fn)
}
