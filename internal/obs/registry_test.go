package obs

import (
	"context"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v want %v (±%v)", msg, got, want, tol)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same counter.
	if r.Counter("test_ops_total", "ops", L("kind", "a")) != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels is a distinct series.
	c2 := r.Counter("test_ops_total", "ops", L("kind", "b"))
	if c2 == c || c2.Value() != 0 {
		t.Fatal("distinct label set should be a fresh counter")
	}

	g := r.Gauge("test_depth", "depth", nil)
	g.Set(3)
	g.Add(2.5)
	g.Add(-1)
	almost(t, g.Value(), 4.5, 1e-12, "gauge")

	if v, ok := r.Value("test_ops_total", L("kind", "a")); !ok || v != 5 {
		t.Fatalf("Value lookup = %v,%v", v, ok)
	}
	if _, ok := r.Value("nope", nil); ok {
		t.Fatal("lookup of unregistered metric should fail")
	}
}

func TestFuncMetricsReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_live", "live", nil, func() float64 { return 1 })
	r.GaugeFunc("test_live", "live", nil, func() float64 { return 2 })
	if v, ok := r.Value("test_live", nil); !ok || v != 2 {
		t.Fatalf("func gauge after replace = %v,%v, want 2", v, ok)
	}
	// Exactly one series in the family despite two registrations.
	for _, f := range r.Gather() {
		if f.Name == "test_live" && len(f.Metrics) != 1 {
			t.Fatalf("replace created %d series, want 1", len(f.Metrics))
		}
	}
}

func TestTypeConflictDetaches(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing", "h", nil).Add(7)
	// Conflicting gauge registration must not corrupt the family; the
	// returned gauge is usable but detached.
	g := r.Gauge("test_thing", "h", nil)
	g.Set(99)
	if v, _ := r.Value("test_thing", nil); v != 7 {
		t.Fatalf("counter clobbered by conflicting gauge: %v", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0,1]: all land in the le=1 bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	almost(t, h.Sum(), 50.5, 1e-9, "sum")
	// Linear interpolation inside [0,1): p50 ≈ 0.5, p95 ≈ 0.95.
	almost(t, h.Quantile(0.50), 0.5, 1e-9, "p50")
	almost(t, h.Quantile(0.95), 0.95, 1e-9, "p95")

	// Spread across buckets: 50 at 1.5 (le=2), 50 at 3 (le=4).
	h2 := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 50; i++ {
		h2.Observe(1.5)
		h2.Observe(3)
	}
	// p25 rank=25 lands mid first occupied bucket (1,2]: 1 + (25/50)*1 = 1.5
	almost(t, h2.Quantile(0.25), 1.5, 1e-9, "p25")
	// p75 rank=75 lands in (2,4]: 2 + (25/50)*2 = 3
	almost(t, h2.Quantile(0.75), 3, 1e-9, "p75")
	// p100 = top of last occupied bucket.
	almost(t, h2.Quantile(1), 4, 1e-9, "p100")

	// Overflow saturates at the highest finite bound.
	h3 := newHistogram([]float64{1, 2})
	h3.Observe(1000)
	almost(t, h3.Quantile(0.99), 2, 1e-9, "overflow quantile")

	// Empty histogram.
	h4 := newHistogram([]float64{1})
	if h4.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramSharedAcrossRegistrations(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("test_lat_seconds", "lat", LatencyBuckets, nil)
	h2 := r.Histogram("test_lat_seconds", "lat", []float64{42}, nil) // buckets ignored on reuse
	if h1 != h2 {
		t.Fatal("same name+labels must share one histogram")
	}
}

// TestPrometheusRoundTrip renders the registry and re-parses the text
// exposition, checking structural validity: every sample belongs to a
// declared family of the right type, histogram buckets are cumulative and
// monotone with le ascending, +Inf equals _count, and label values
// round-trip through escaping.
func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_jobs_total", "jobs by state", L("state", "done")).Add(3)
	r.Counter("rt_jobs_total", "jobs by state", L("state", "failed")).Add(1)
	r.Gauge("rt_depth", "queue depth", nil).Set(2.5)
	r.GaugeFunc("rt_workers", "workers", nil, func() float64 { return 8 })
	h := r.Histogram("rt_wait_seconds", "queue wait", []float64{0.1, 1, 10}, L("q", `we"ird\q`))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	types := map[string]string{}    // family -> type
	samples := map[string]float64{} // full sample line key -> value
	var order []string
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", parts[3], line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var v float64
		var err error
		if valStr == "+Inf" {
			v = math.Inf(1)
		} else if v, err = strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[key] = v
		order = append(order, key)

		// Sample name must resolve to a declared family.
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && types[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", key)
		}
	}

	// Families sorted by name in output.
	var fams []string
	for _, k := range order {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		if len(fams) == 0 || fams[len(fams)-1] != name {
			fams = append(fams, name)
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] > fams[i] {
			t.Fatalf("families out of order: %q before %q", fams[i-1], fams[i])
		}
	}

	// Spot-check values.
	if samples[`rt_jobs_total{state="done"}`] != 3 {
		t.Fatalf("rt_jobs_total{done} = %v", samples[`rt_jobs_total{state="done"}`])
	}
	if samples["rt_depth"] != 2.5 || samples["rt_workers"] != 8 {
		t.Fatalf("gauge samples wrong: depth=%v workers=%v", samples["rt_depth"], samples["rt_workers"])
	}

	// Histogram structure: cumulative, monotone, +Inf == count.
	lbl := `q="we\"ird\\q"`
	b1 := samples[`rt_wait_seconds_bucket{`+lbl+`,le="0.1"}`]
	b2 := samples[`rt_wait_seconds_bucket{`+lbl+`,le="1"}`]
	b3 := samples[`rt_wait_seconds_bucket{`+lbl+`,le="10"}`]
	binf := samples[`rt_wait_seconds_bucket{`+lbl+`,le="+Inf"}`]
	cnt := samples[`rt_wait_seconds_count{`+lbl+`}`]
	if b1 != 1 || b2 != 2 || b3 != 3 || binf != 4 {
		t.Fatalf("buckets = %v %v %v %v, want 1 2 3 4\n%s", b1, b2, b3, binf, text)
	}
	if b1 > b2 || b2 > b3 || b3 > binf {
		t.Fatal("bucket counts not monotone")
	}
	if binf != cnt {
		t.Fatalf("+Inf bucket (%v) != count (%v)", binf, cnt)
	}
	almost(t, samples[`rt_wait_seconds_sum{`+lbl+`}`], 55.55, 1e-9, "hist sum")
}

// TestRegistryHammer exercises registration and updates from many
// goroutines; run under -race it proves the registry is data-race free.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := L("w", strconv.Itoa(g%4))
			for i := 0; i < 500; i++ {
				r.Counter("hammer_ops_total", "ops", lbl).Inc()
				r.Gauge("hammer_depth", "d", lbl).Add(1)
				r.Histogram("hammer_lat", "l", LatencyBuckets, lbl).Observe(float64(i) / 100)
				r.GaugeFunc("hammer_live", "lv", lbl, func() float64 { return float64(i) })
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, f := range r.Gather() {
		if f.Name == "hammer_ops_total" {
			for _, m := range f.Metrics {
				total += int64(m.Value)
			}
		}
	}
	if total != 8*500 {
		t.Fatalf("hammer counter total = %d, want %d", total, 8*500)
	}
}

func TestTimeline(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tl := NewTimeline("accepted", t0)
	tl.Mark("queued", t0.Add(1*time.Second))
	tl.Barrier("leased", t0.Add(2*time.Second))
	tl.Mark("simulating", t0.Add(3*time.Second))
	tl.Mark("simulating", t0.Add(10*time.Second)) // deduped within attempt
	tl.Barrier("leased", t0.Add(4*time.Second))   // retry: new attempt window
	tl.Mark("simulating", t0.Add(5*time.Second))  // records again post-barrier
	tl.Barrier("done", t0.Add(6*time.Second))

	views := tl.Snapshot(t0.Add(7 * time.Second))
	want := []struct {
		stage string
		dur   float64
	}{
		{"accepted", 1}, {"queued", 1}, {"leased", 1}, {"simulating", 1},
		{"leased", 1}, {"simulating", 1}, {"done", 1},
	}
	if len(views) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(views), len(want), views)
	}
	for i, w := range want {
		if views[i].Stage != w.stage || math.Abs(views[i].DurationSeconds-w.dur) > 1e-9 {
			t.Fatalf("stage %d = %+v, want %s/%v", i, views[i], w.stage, w.dur)
		}
	}

	// Nil timeline is inert everywhere.
	var nilTL *Timeline
	nilTL.Mark("x", t0)
	nilTL.Barrier("y", t0)
	if nilTL.Snapshot(t0) != nil {
		t.Fatal("nil timeline should snapshot to nil")
	}
}

func TestTimelineContext(t *testing.T) {
	tl := NewTimeline("accepted", time.Now())
	ctx := WithTimeline(context.Background(), tl)
	if TimelineFrom(ctx) != tl {
		t.Fatal("timeline did not round-trip through context")
	}
	if TimelineFrom(context.Background()) != nil {
		t.Fatal("bare context should carry no timeline")
	}
}
