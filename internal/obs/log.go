package obs

import (
	"io"
	"log/slog"
	"os"
)

// NopLogger returns a logger that discards everything — the default for
// library layers when the caller didn't wire one, so instrumentation can
// log unconditionally without nil checks. (slog.DiscardHandler is a Go
// 1.24 API; this module targets 1.22, hence the explicit io.Discard
// handler.)
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewLogger builds the standard service logger: text or JSON handler to
// stderr at the given level. pythia-serve's -log-json / -log-level flags
// feed this.
func NewLogger(json bool, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// ParseLevel maps a -log-level flag value onto a slog.Level, defaulting
// to Info for anything unrecognized.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
