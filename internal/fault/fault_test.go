package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestDisarmedHitIsFree(t *testing.T) {
	if err := Hit("nobody.armed.this"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
}

func TestErrorModeDefaultsToErrInjected(t *testing.T) {
	defer Enable("p.default", Spec{})()
	err := Hit("p.default")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if Trips("p.default") != 1 {
		t.Fatalf("Trips = %d, want 1", Trips("p.default"))
	}
}

func TestCustomErrorPassesThroughUnwrapped(t *testing.T) {
	boom := errors.New("custom boom")
	defer Enable("p.custom", Spec{Err: boom})()
	if err := Hit("p.custom"); !errors.Is(err, boom) {
		t.Fatalf("Hit = %v, want custom error", err)
	}
}

func TestSkipPassesThroughFirstHits(t *testing.T) {
	defer Enable("p.skip", Spec{Skip: 2})()
	for i := 0; i < 2; i++ {
		if err := Hit("p.skip"); err != nil {
			t.Fatalf("hit %d tripped during skip window: %v", i, err)
		}
	}
	if err := Hit("p.skip"); err == nil {
		t.Fatal("hit after skip window did not trip")
	}
	if got := Trips("p.skip"); got != 1 {
		t.Fatalf("Trips = %d, want 1 (skipped hits don't count)", got)
	}
}

func TestCountAutoDisarms(t *testing.T) {
	defer Enable("p.count", Spec{Count: 2})()
	for i := 0; i < 2; i++ {
		if err := Hit("p.count"); err == nil {
			t.Fatalf("hit %d did not trip", i)
		}
	}
	if err := Hit("p.count"); err != nil {
		t.Fatalf("point still armed after Count trips: %v", err)
	}
	// The trip count survives the auto-disarm for post-hoc assertions.
	if got := Trips("p.count"); got != 2 {
		t.Fatalf("Trips = %d, want 2", got)
	}
}

func TestPanicMode(t *testing.T) {
	defer Enable("p.panic", Spec{Mode: ModePanic})()
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if ip.Point != "p.panic" {
			t.Fatalf("panic point = %q, want p.panic", ip.Point)
		}
	}()
	Hit("p.panic")
	t.Fatal("Hit did not panic")
}

func TestDelayMode(t *testing.T) {
	defer Enable("p.delay", Spec{Mode: ModeDelay, Delay: 30 * time.Millisecond})()
	start := time.Now()
	if err := Hit("p.delay"); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 30ms", d)
	}
}

func TestDisableScopesToOnePoint(t *testing.T) {
	disableA := Enable("p.a", Spec{})
	defer Enable("p.b", Spec{})()
	disableA()
	if err := Hit("p.a"); err != nil {
		t.Fatalf("disabled point still trips: %v", err)
	}
	if err := Hit("p.b"); err == nil {
		t.Fatal("unrelated point was disarmed")
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Enable("p.r1", Spec{})
	Enable("p.r2", Spec{})
	Reset()
	if err := Hit("p.r1"); err != nil {
		t.Fatalf("point armed after Reset: %v", err)
	}
	if Trips("p.r2") != 0 {
		t.Fatal("trip counts survived Reset")
	}
}

func TestConcurrentHitsTripExactly(t *testing.T) {
	defer Enable("p.conc", Spec{Count: 10})()
	var wg sync.WaitGroup
	var tripped sync.Map
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Hit("p.conc"); err != nil {
				tripped.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	n := 0
	tripped.Range(func(_, _ any) bool { n++; return true })
	if n != 10 {
		t.Fatalf("%d goroutines saw a trip, want exactly Count=10", n)
	}
}

func TestClassification(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"unmarked default", base, false},
		{"transient mark", Transient(base), true},
		{"permanent mark", Permanent(base), false},
		{"wrapped transient", fmt.Errorf("outer: %w", Transient(base)), true},
		{"outermost mark wins", Permanent(fmt.Errorf("retried out: %w", Transient(base))), false},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled is not retryable", context.Canceled, false},
		{"enospc", fmt.Errorf("write: %w", syscall.ENOSPC), true},
		{"eio", fmt.Errorf("read: %w", syscall.EIO), true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("%s: IsTransient = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifiedUnwrapsToOriginal(t *testing.T) {
	base := errors.New("boom")
	if !errors.Is(Transient(base), base) {
		t.Fatal("Transient hides the wrapped error from errors.Is")
	}
	if !errors.Is(Permanent(fmt.Errorf("x: %w", base)), base) {
		t.Fatal("Permanent hides the wrapped chain from errors.Is")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Fatal("classifying nil must return nil")
	}
}
