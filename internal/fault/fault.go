// Package fault is the repo's single fault-injection registry: every
// package that wants a testable failure site declares a named failpoint
// and calls Hit at the site; tests arm points by name with Enable. It
// replaces the ad-hoc per-package failpoint mechanisms that used to live
// in fsutil, stream, results and policy — one registry means chaos tests
// can compose faults across layers (a store write failing while a trace
// decodes garbage) without knowing each package's private test hooks,
// and a ci.sh grep-gate keeps new private failpoints from reappearing.
//
// A disarmed registry costs one atomic load per Hit, so failpoints are
// safe on hot paths (the trace decode loop checks one per record).
//
// The package also owns the repo's failure taxonomy: Transient and
// Permanent wrap errors with a retry classification, and IsTransient is
// the single predicate the serve executor (and any future fleet
// scheduler) consults before retrying. See DESIGN.md "Fault model and
// recovery".
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what a tripped failpoint does.
type Mode int

const (
	// ModeError returns Spec.Err from Hit (the default).
	ModeError Mode = iota
	// ModePanic panics with an InjectedPanic value, simulating a crash in
	// the instrumented code path.
	ModePanic
	// ModeDelay sleeps for Spec.Delay and then returns nil, injecting
	// latency without failure (lease-expiry and timeout tests).
	ModeDelay
)

// Spec describes an armed failpoint.
type Spec struct {
	// Mode is what the point does when it trips (default ModeError).
	Mode Mode
	// Err is the error ModeError returns; nil defaults to a wrapped
	// ErrInjected. Wrap it with Transient to exercise retry paths.
	Err error
	// Delay is ModeDelay's sleep.
	Delay time.Duration
	// Skip passes through the first Skip hits before the point starts
	// tripping (reach "the Nth write" without tripping earlier ones).
	Skip int
	// Count disarms the point after it has tripped Count times; 0 means
	// it trips until disabled.
	Count int
}

// ErrInjected is the sentinel wrapped by every default injected error,
// so tests can assert errors.Is(err, fault.ErrInjected) without caring
// which point fired.
var ErrInjected = errors.New("injected fault")

// InjectedPanic is the value a ModePanic failpoint panics with;
// recover-based crash tests can distinguish it from a real bug.
type InjectedPanic struct{ Point string }

func (p InjectedPanic) String() string { return "fault: injected panic at " + p.Point }

// point is one armed failpoint's state.
type point struct {
	spec  Spec
	skip  int
	trips int
}

var (
	mu     sync.Mutex
	points map[string]*point
	// trips survives auto-disarm and Disable so tests can assert how
	// often a point fired after the fact; Enable and Reset zero it.
	tripCounts map[string]int64
	// armed is the lock-free fast path: zero means no point is enabled
	// anywhere, so Hit returns before touching the mutex.
	armed atomic.Int32
)

// Enable arms the named failpoint with spec (replacing any previous
// arming and zeroing its trip count) and returns a disable func for
// defer-based per-test scoping.
func Enable(name string, spec Spec) (disable func()) {
	if spec.Mode == ModeError && spec.Err == nil {
		spec.Err = fmt.Errorf("%s: %w", name, ErrInjected)
	}
	mu.Lock()
	if points == nil {
		points = make(map[string]*point)
		tripCounts = make(map[string]int64)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{spec: spec, skip: spec.Skip}
	tripCounts[name] = 0
	mu.Unlock()
	return func() { Disable(name) }
}

// Disable disarms the named failpoint; its trip count remains readable.
func Disable(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint and zeroes all trip counts — test
// teardown for suites that arm several points.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = nil
	tripCounts = nil
	mu.Unlock()
}

// Trips reports how many times the named point has tripped since it was
// last enabled (auto-disarm and Disable do not clear it).
func Trips(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return tripCounts[name]
}

// Hit is the instrumented-site call: it reports the injected error (or
// panics, or sleeps) when the named point is armed and due, and returns
// nil otherwise. Production callers treat a non-nil return exactly like
// a real failure of the operation the point guards.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	pt := points[name]
	if pt == nil {
		mu.Unlock()
		return nil
	}
	if pt.skip > 0 {
		pt.skip--
		mu.Unlock()
		return nil
	}
	pt.trips++
	tripCounts[name]++
	spec := pt.spec
	if spec.Count > 0 && pt.trips >= spec.Count {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()

	switch spec.Mode {
	case ModePanic:
		panic(InjectedPanic{Point: name}) // fault: injected panic
	case ModeDelay:
		time.Sleep(spec.Delay)
		return nil
	default:
		return spec.Err
	}
}
