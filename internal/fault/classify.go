package fault

import (
	"context"
	"errors"
	"syscall"
)

// classified wraps an error with an explicit retry classification. The
// wrapped error stays reachable through Unwrap, so errors.Is/As chains
// (and the serve layer's context-cancellation mapping) see through it.
type classified struct {
	err       error
	transient bool
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient marks err as retryable: the operation failed for a reason
// that plausibly clears on its own (a busy disk, a full queue, a
// deadline). Returns nil for nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: true}
}

// Permanent marks err as not worth retrying: the same inputs will fail
// the same way (a bad spec, a corrupted trace, a policy mismatch).
// Returns nil for nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, transient: false}
}

// IsTransient reports whether err should be retried. An explicit
// Transient/Permanent mark wins (the outermost mark, so re-classifying
// a wrapped error works); otherwise a small allow-list of known-flaky
// causes — I/O pressure errnos and expired deadlines — is transient and
// everything else, including context.Canceled (the caller asked us to
// stop) and unrecognized errors, defaults to permanent so unknown
// failures never feed a retry storm. This is the Su et al. distinction
// the ROADMAP adopts: flaky point-failures retry, systematic ones fail
// fast.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var c *classified
	if errors.As(err, &c) {
		return c.transient
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	for _, errno := range []syscall.Errno{syscall.ENOSPC, syscall.EIO, syscall.EAGAIN, syscall.EINTR} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
