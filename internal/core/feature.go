// Package core implements Pythia, the paper's contribution: a hardware
// prefetcher formulated as a reinforcement-learning agent. For every demand
// request the agent extracts a multi-feature state vector, picks a prefetch
// offset action via an ε-greedy policy over a tile-coded hierarchical
// Q-value store (QVStore), and learns online with SARSA from discrete,
// bandwidth-aware reward levels assigned through an evaluation queue (EQ).
package core

import (
	"fmt"

	"pythia/internal/mem"
)

// ControlFlow enumerates the program control-flow components of a feature
// (paper Table 3).
type ControlFlow uint8

const (
	// CFNone contributes no control-flow information.
	CFNone ControlFlow = iota
	// CFPC is the PC of the load.
	CFPC
	// CFPCPath is the XOR of the last 3 load PCs.
	CFPCPath
	// CFPCXorPrev approximates "PC XOR branch-PC" with the XOR of the
	// current and previous distinct load PCs (traces carry no branch PCs;
	// see DESIGN.md).
	CFPCXorPrev
)

// ControlFlows lists all control-flow components.
func ControlFlows() []ControlFlow { return []ControlFlow{CFNone, CFPC, CFPCPath, CFPCXorPrev} }

// String implements fmt.Stringer.
func (c ControlFlow) String() string {
	switch c {
	case CFNone:
		return "None"
	case CFPC:
		return "PC"
	case CFPCPath:
		return "PC-path"
	case CFPCXorPrev:
		return "PC^prevPC"
	default:
		return "?"
	}
}

// DataFlow enumerates the program data-flow components of a feature
// (paper Table 3).
type DataFlow uint8

const (
	// DFNone contributes no data-flow information.
	DFNone DataFlow = iota
	// DFAddress is the demanded cacheline address.
	DFAddress
	// DFPageNum is the physical page number.
	DFPageNum
	// DFOffset is the in-page line offset.
	DFOffset
	// DFDelta is the in-page cacheline delta from the previous access to
	// the same page.
	DFDelta
	// DFLast4Offsets is the sequence of the last 4 offsets.
	DFLast4Offsets
	// DFLast4Deltas is the sequence of the last 4 deltas.
	DFLast4Deltas
	// DFOffsetXorDelta is the offset XOR-ed with the delta.
	DFOffsetXorDelta
)

// DataFlows lists all data-flow components.
func DataFlows() []DataFlow {
	return []DataFlow{DFNone, DFAddress, DFPageNum, DFOffset, DFDelta,
		DFLast4Offsets, DFLast4Deltas, DFOffsetXorDelta}
}

// String implements fmt.Stringer.
func (d DataFlow) String() string {
	switch d {
	case DFNone:
		return "None"
	case DFAddress:
		return "Address"
	case DFPageNum:
		return "PageNum"
	case DFOffset:
		return "Offset"
	case DFDelta:
		return "Delta"
	case DFLast4Offsets:
		return "Last4Offsets"
	case DFLast4Deltas:
		return "Last4Deltas"
	case DFOffsetXorDelta:
		return "Offset^Delta"
	default:
		return "?"
	}
}

// Feature is one program feature: the concatenation of a control-flow and a
// data-flow component (§4.3.1 derives 32 such features).
type Feature struct {
	CF ControlFlow
	DF DataFlow
}

// String implements fmt.Stringer.
func (f Feature) String() string {
	switch {
	case f.CF == CFNone && f.DF == DFNone:
		return "Empty"
	case f.CF == CFNone:
		return f.DF.String()
	case f.DF == DFNone:
		return f.CF.String()
	default:
		return fmt.Sprintf("%s+%s", f.CF, f.DF)
	}
}

// AllFeatures enumerates the 32-feature exploration space of §4.3.1.
func AllFeatures() []Feature {
	var out []Feature
	for _, cf := range ControlFlows() {
		for _, df := range DataFlows() {
			out = append(out, Feature{cf, df})
		}
	}
	return out
}

// Canonical features used by the basic configuration (Table 2).
var (
	// FeaturePCDelta is "PC+Delta".
	FeaturePCDelta = Feature{CFPC, DFDelta}
	// FeatureLast4Deltas is "Sequence of last-4 deltas".
	FeatureLast4Deltas = Feature{CFNone, DFLast4Deltas}
)

// State captures the program context of one demand request, from which all
// feature values derive.
type State struct {
	PC     uint64
	Line   uint64
	Page   uint64
	Offset int
	Delta  int // in-page delta vs. previous access to the same page (0 on first touch)

	PCPath      uint64 // XOR of last 3 PCs
	PrevPC      uint64
	LastOffsets [4]int
	LastDeltas  [4]int
}

// Value computes the feature's value for a state. Values feed the tile-coded
// QVStore index hashes; they only need to be deterministic and well mixed.
func (f Feature) Value(s *State) uint64 {
	var cf uint64
	switch f.CF {
	case CFPC:
		cf = s.PC
	case CFPCPath:
		cf = s.PCPath
	case CFPCXorPrev:
		cf = s.PC ^ s.PrevPC
	}
	var df uint64
	switch f.DF {
	case DFAddress:
		df = s.Line
	case DFPageNum:
		df = s.Page
	case DFOffset:
		df = uint64(s.Offset)
	case DFDelta:
		df = uint64(uint8(int8(s.Delta))) // signed delta folded to 8 bits
	case DFLast4Offsets:
		for i, o := range s.LastOffsets {
			df |= uint64(uint8(o)) << (8 * uint(i))
		}
	case DFLast4Deltas:
		for i, d := range s.LastDeltas {
			df |= uint64(uint8(int8(d))) << (8 * uint(i))
		}
	case DFOffsetXorDelta:
		df = uint64(s.Offset) ^ uint64(uint8(int8(s.Delta)))
	}
	// Concatenate: keep the components in disjoint bit ranges before the
	// QVStore's per-plane hashing mixes them.
	return cf<<32 ^ df ^ cf>>29
}

// Tracker derives State from the raw demand stream: it keeps per-page last
// offsets (for deltas) plus global PC/offset/delta history.
type Tracker struct {
	pages  []trackerPage
	mask   uint64
	pcs    [3]uint64
	prevPC uint64
}

type trackerPage struct {
	tag     uint64
	lastOff int
	valid   bool
	// Per-page histories: the paper's delta/offset sequence features are
	// page-local (interleaved pages would otherwise scramble them).
	offsets [4]int
	deltas  [4]int
}

// NewTracker builds a tracker following `pages` concurrent pages (power of
// two).
func NewTracker(pages int) *Tracker {
	if pages <= 0 || pages&(pages-1) != 0 {
		panic("core: tracker page count must be a power of two")
	}
	return &Tracker{pages: make([]trackerPage, pages), mask: uint64(pages - 1)}
}

// Observe folds one demand access into the history and returns the state.
func (t *Tracker) Observe(pc, line uint64) State {
	page := mem.PageOfLine(line)
	off := mem.LineOffsetOfLine(line)

	delta := 0
	e := &t.pages[page&t.mask]
	if e.valid && e.tag == page {
		delta = off - e.lastOff
	} else {
		// New page (or tracker eviction): page-local histories restart.
		*e = trackerPage{tag: page}
	}
	e.tag, e.lastOff, e.valid = page, off, true

	prevPC := t.prevPC
	if t.pcs[0] != pc {
		t.prevPC = t.pcs[0]
		prevPC = t.prevPC
	}

	// Histories include the current access (most recent in slot 0), so a
	// feature like "last-4 deltas" is the SPP-style signature ending at the
	// current request. Delta and offset sequences are page-local.
	copy(t.pcs[1:], t.pcs[:2])
	t.pcs[0] = pc
	copy(e.offsets[1:], e.offsets[:3])
	e.offsets[0] = off
	copy(e.deltas[1:], e.deltas[:3])
	e.deltas[0] = delta

	s := State{
		PC:     pc,
		Line:   line,
		Page:   page,
		Offset: off,
		Delta:  delta,
		PCPath: t.pcs[0] ^ t.pcs[1] ^ t.pcs[2],
		PrevPC: prevPC,
	}
	s.LastOffsets = e.offsets
	s.LastDeltas = e.deltas
	return s
}
