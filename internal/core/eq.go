package core

// EQ is Pythia's evaluation queue (§4.2.3): a FIFO of recently taken
// actions awaiting reward assignment. Entries receive rewards in one of
// three ways — immediately on insertion (no-prefetch and out-of-page
// actions), during residency (a demand matches the prefetched line), or at
// eviction (inaccurate). Evicted entries drive the SARSA update.
//
// Entries own their signature storage: inserts COPY the caller's signature
// into per-slot buffers (allocated once, reused forever), so the agent can
// reuse a single ResolvedSig across demands and the queue stays
// allocation-free in steady state. Entries inserted with InsertResolved
// also carry the state's resolved row offsets, so the SARSA update at
// eviction never re-hashes.

type eqEntry struct {
	rs        ResolvedSig
	action    int
	line      uint64 // prefetched line (0 and tracked=false for no-prefetch)
	tracked   bool   // line is meaningful and searchable
	filled    bool   // prefetch fill observed (timeliness bit)
	hasReward bool
	reward    float64
	valid     bool
}

// EQ is the evaluation queue.
type EQ struct {
	ring []eqEntry
	head int // oldest entry
	size int
	// byLine indexes tracked entries for O(1) demand/fill search.
	byLine map[uint64]int
	// evictRS is the scratch an eviction copies the outgoing entry's
	// signature into before the slot is overwritten; Evicted aliases it and
	// stays usable until the next Insert.
	evictRS ResolvedSig
}

// NewEQ builds an evaluation queue of the given capacity.
func NewEQ(capacity int) *EQ {
	if capacity <= 0 {
		panic("core: EQ capacity must be positive")
	}
	return &EQ{ring: make([]eqEntry, capacity), byLine: make(map[uint64]int, capacity)}
}

// Len returns the number of resident entries.
func (q *EQ) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *EQ) Cap() int { return len(q.ring) }

// lookup returns the slot index of a tracked line, or -1.
func (q *EQ) lookup(line uint64) int {
	if i, ok := q.byLine[line]; ok && q.ring[i].valid && q.ring[i].tracked && q.ring[i].line == line {
		return i
	}
	return -1
}

// OnDemand checks whether a demand to line matches an in-flight action and,
// if so, assigns the accurate-timely or accurate-late reward based on the
// filled bit (Algorithm 1 lines 6-11). It reports what it found.
func (q *EQ) OnDemand(line uint64, rAT, rAL float64) (matched, wasFilled bool) {
	i := q.lookup(line)
	if i < 0 {
		return false, false
	}
	e := &q.ring[i]
	if e.hasReward {
		return false, false
	}
	if e.filled {
		e.reward = rAT
	} else {
		e.reward = rAL
	}
	e.hasReward = true
	return true, e.filled
}

// OnFill sets the filled bit of the matching entry (Algorithm 1 line 31).
func (q *EQ) OnFill(line uint64) bool {
	i := q.lookup(line)
	if i < 0 {
		return false
	}
	q.ring[i].filled = true
	return true
}

// Evicted is an entry popped by an insertion, carrying everything the SARSA
// update needs. Sig (and the resolved signature behind it) aliases the
// queue's eviction scratch: it is valid until the next Insert.
type Evicted struct {
	Sig       StateSig
	Action    int
	Reward    float64
	HadReward bool // reward was assigned before eviction
	Valid     bool
	// rs is the evicted entry's resolved signature (offset-bearing only for
	// InsertResolved entries).
	rs *ResolvedSig
}

// Insert pushes a new action into the queue. line/tracked describe the
// prefetched address; reward/hasReward carry an immediate reward
// (no-prefetch, out-of-page). When the queue is full the oldest entry is
// evicted and returned. The signature is copied; sig is not retained.
func (q *EQ) Insert(sig StateSig, action int, line uint64, tracked bool, reward float64, hasReward bool) Evicted {
	return q.insert(sig, nil, action, line, tracked, reward, hasReward)
}

// InsertResolved is Insert for a resolved signature: the entry additionally
// keeps the precomputed row offsets so the eviction-time SARSA update is
// hash-free. r is copied, not retained.
func (q *EQ) InsertResolved(r *ResolvedSig, action int, line uint64, tracked bool, reward float64, hasReward bool) Evicted {
	return q.insert(r.vals, r.offs, action, line, tracked, reward, hasReward)
}

func (q *EQ) insert(vals []uint64, offs []int32, action int, line uint64, tracked bool, reward float64, hasReward bool) Evicted {
	var out Evicted
	slot := (q.head + q.size) % len(q.ring)
	if q.size == len(q.ring) {
		// Evict the oldest, copying it out before the slot is reused.
		old := &q.ring[q.head]
		q.evictRS.copyFrom(old.rs.vals, old.rs.offs)
		out = Evicted{
			Sig: StateSig(q.evictRS.vals), Action: old.action,
			Reward: old.reward, HadReward: old.hasReward, Valid: true,
			rs: &q.evictRS,
		}
		if old.tracked {
			if idx, ok := q.byLine[old.line]; ok && idx == q.head {
				delete(q.byLine, old.line)
			}
		}
		slot = q.head
		q.head = (q.head + 1) % len(q.ring)
		q.size--
	}
	e := &q.ring[slot]
	e.rs.copyFrom(vals, offs)
	e.action = action
	e.line = line
	e.tracked = tracked
	e.filled = false
	e.reward = reward
	e.hasReward = hasReward
	e.valid = true
	if tracked {
		q.byLine[line] = slot
	}
	q.size++
	return out
}

// Head returns the oldest resident entry's state-action pair: after an
// eviction this is (S_{t+1}, A_{t+1}) for the SARSA update (Algorithm 1
// line 28). The signature aliases the entry; it is valid until the entry is
// evicted.
func (q *EQ) Head() (sig StateSig, action int, ok bool) {
	if q.size == 0 {
		return nil, 0, false
	}
	e := &q.ring[q.head]
	return StateSig(e.rs.vals), e.action, true
}

// HeadResolved is Head returning the entry's resolved signature. Offsets
// are present only for entries inserted via InsertResolved.
func (q *EQ) HeadResolved() (rs *ResolvedSig, action int, ok bool) {
	if q.size == 0 {
		return nil, 0, false
	}
	e := &q.ring[q.head]
	return &e.rs, e.action, true
}
