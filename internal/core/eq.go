package core

// EQ is Pythia's evaluation queue (§4.2.3): a FIFO of recently taken
// actions awaiting reward assignment. Entries receive rewards in one of
// three ways — immediately on insertion (no-prefetch and out-of-page
// actions), during residency (a demand matches the prefetched line), or at
// eviction (inaccurate). Evicted entries drive the SARSA update.

type eqEntry struct {
	sig       StateSig
	action    int
	line      uint64 // prefetched line (0 and tracked=false for no-prefetch)
	tracked   bool   // line is meaningful and searchable
	filled    bool   // prefetch fill observed (timeliness bit)
	hasReward bool
	reward    float64
	valid     bool
}

// EQ is the evaluation queue.
type EQ struct {
	ring []eqEntry
	head int // oldest entry
	size int
	// byLine indexes tracked entries for O(1) demand/fill search.
	byLine map[uint64]int
}

// NewEQ builds an evaluation queue of the given capacity.
func NewEQ(capacity int) *EQ {
	if capacity <= 0 {
		panic("core: EQ capacity must be positive")
	}
	return &EQ{ring: make([]eqEntry, capacity), byLine: make(map[uint64]int, capacity)}
}

// Len returns the number of resident entries.
func (q *EQ) Len() int { return q.size }

// Cap returns the queue capacity.
func (q *EQ) Cap() int { return len(q.ring) }

// lookup returns the slot index of a tracked line, or -1.
func (q *EQ) lookup(line uint64) int {
	if i, ok := q.byLine[line]; ok && q.ring[i].valid && q.ring[i].tracked && q.ring[i].line == line {
		return i
	}
	return -1
}

// OnDemand checks whether a demand to line matches an in-flight action and,
// if so, assigns the accurate-timely or accurate-late reward based on the
// filled bit (Algorithm 1 lines 6-11). It reports what it found.
func (q *EQ) OnDemand(line uint64, rAT, rAL float64) (matched, wasFilled bool) {
	i := q.lookup(line)
	if i < 0 {
		return false, false
	}
	e := &q.ring[i]
	if e.hasReward {
		return false, false
	}
	if e.filled {
		e.reward = rAT
	} else {
		e.reward = rAL
	}
	e.hasReward = true
	return true, e.filled
}

// OnFill sets the filled bit of the matching entry (Algorithm 1 line 31).
func (q *EQ) OnFill(line uint64) bool {
	i := q.lookup(line)
	if i < 0 {
		return false
	}
	q.ring[i].filled = true
	return true
}

// Evicted is an entry popped by an insertion, carrying everything the SARSA
// update needs.
type Evicted struct {
	Sig       StateSig
	Action    int
	Reward    float64
	HadReward bool // reward was assigned before eviction
	Valid     bool
}

// Insert pushes a new action into the queue. line/tracked describe the
// prefetched address; reward/hasReward carry an immediate reward
// (no-prefetch, out-of-page). When the queue is full the oldest entry is
// evicted and returned.
func (q *EQ) Insert(sig StateSig, action int, line uint64, tracked bool, reward float64, hasReward bool) Evicted {
	var out Evicted
	slot := (q.head + q.size) % len(q.ring)
	if q.size == len(q.ring) {
		// Evict the oldest.
		old := &q.ring[q.head]
		out = Evicted{Sig: old.sig, Action: old.action, Reward: old.reward, HadReward: old.hasReward, Valid: true}
		if old.tracked {
			if idx, ok := q.byLine[old.line]; ok && idx == q.head {
				delete(q.byLine, old.line)
			}
		}
		slot = q.head
		q.head = (q.head + 1) % len(q.ring)
		q.size--
	}
	q.ring[slot] = eqEntry{
		sig:       sig,
		action:    action,
		line:      line,
		tracked:   tracked,
		reward:    reward,
		hasReward: hasReward,
		valid:     true,
	}
	if tracked {
		q.byLine[line] = slot
	}
	q.size++
	return out
}

// Head returns the oldest resident entry's state-action pair: after an
// eviction this is (S_{t+1}, A_{t+1}) for the SARSA update (Algorithm 1
// line 28).
func (q *EQ) Head() (sig StateSig, action int, ok bool) {
	if q.size == 0 {
		return nil, 0, false
	}
	e := &q.ring[q.head]
	return e.sig, e.action, true
}
