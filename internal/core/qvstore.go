package core

// QVStore is the hierarchical, table-based Q-value store of §4.2.1. It is
// organized as one vault per program feature; each vault holds several
// planes (tile-coding tiles). A plane is a small 2-D table indexed by a
// hashed feature value and the action index, storing a partial Q-value.
//
//	Q(φ, A)  = Σ_planes plane[idx_p(φ)][A]      (within a vault)
//	Q(S, A)  = max_vaults Q(φ_i, A)             (Eqn. 3)
//
// The per-plane shifting constants of the paper's tile coding are derived
// deterministically from the store's seed.

// qvMix is a 64-bit finalizer (splitmix64-style) used to hash feature
// values into plane indices.
func qvMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type plane struct {
	shift uint64 // per-plane shifting constant (tile offset)
	table []float64
}

type vault struct {
	feature Feature
	planes  []plane
}

// QVStore records Q-values for every observed state-action pair.
type QVStore struct {
	vaults     []vault
	featureDim int
	numActions int
	numPlanes  int
	initQ      float64
	quantStep  float64 // 0 = full precision
}

// NewQVStore builds a store for the given features with featureDim entries
// per plane (128 in the basic config), numPlanes planes per vault, and
// initQ as the optimistic initial state-action Q-value (1/(1-γ),
// Algorithm 1 line 2). seed fixes the per-plane shifting constants.
func NewQVStore(features []Feature, featureDim, numActions, numPlanes int, initQ float64, seed uint64) *QVStore {
	if featureDim <= 0 || featureDim&(featureDim-1) != 0 {
		panic("core: QVStore feature dimension must be a power of two")
	}
	if numActions <= 0 || numPlanes <= 0 || len(features) == 0 {
		panic("core: QVStore needs features, actions and planes")
	}
	s := &QVStore{
		featureDim: featureDim,
		numActions: numActions,
		numPlanes:  numPlanes,
		initQ:      initQ,
	}
	perPlane := initQ / float64(numPlanes)
	for vi, f := range features {
		v := vault{feature: f}
		for p := 0; p < numPlanes; p++ {
			pl := plane{
				shift: qvMix(seed + uint64(vi)*1000003 + uint64(p)*7919),
				table: make([]float64, featureDim*numActions),
			}
			for i := range pl.table {
				pl.table[i] = perPlane
			}
			v.planes = append(v.planes, pl)
		}
		s.vaults = append(s.vaults, v)
	}
	return s
}

// Features returns the features the store's vaults correspond to.
func (s *QVStore) Features() []Feature {
	out := make([]Feature, len(s.vaults))
	for i, v := range s.vaults {
		out[i] = v.feature
	}
	return out
}

// index computes the plane-local row for a feature value.
func (s *QVStore) index(pl *plane, featVal uint64) int {
	return int(qvMix(featVal+pl.shift) & uint64(s.featureDim-1))
}

// StateSig precomputes the per-vault feature values of a state: this is
// what EQ entries carry so Q-value updates after eviction see the original
// state.
type StateSig []uint64

// Signature extracts the state signature (one feature value per vault).
func (s *QVStore) Signature(st *State) StateSig {
	sig := make(StateSig, len(s.vaults))
	for i, v := range s.vaults {
		sig[i] = v.feature.Value(st)
	}
	return sig
}

// VaultQ returns Q(φ_i, A) for vault i.
func (s *QVStore) VaultQ(i int, featVal uint64, action int) float64 {
	v := &s.vaults[i]
	var q float64
	for p := range v.planes {
		pl := &v.planes[p]
		q += pl.table[s.index(pl, featVal)*s.numActions+action]
	}
	return q
}

// Q returns the state-action value: the maximum constituent feature-action
// Q-value (Eqn. 3).
func (s *QVStore) Q(sig StateSig, action int) float64 {
	best := s.VaultQ(0, sig[0], action)
	for i := 1; i < len(s.vaults); i++ {
		if q := s.VaultQ(i, sig[i], action); q > best {
			best = q
		}
	}
	return best
}

// ArgmaxQ returns the action with the highest Q-value and that value,
// mirroring the pipelined QVStore search of §4.2.2 (which iterates actions,
// tracking the running maximum).
func (s *QVStore) ArgmaxQ(sig StateSig) (action int, q float64) {
	action, q = 0, s.Q(sig, 0)
	for a := 1; a < s.numActions; a++ {
		if qa := s.Q(sig, a); qa > q {
			action, q = a, qa
		}
	}
	return action, q
}

// Update applies the SARSA temporal-difference step to Q(S1, A1):
//
//	Q(S1,A1) += α [R + γ Q(S2,A2) − Q(S1,A1)]
//
// The correction is distributed equally across each vault's planes so the
// per-vault sum moves by the full α-scaled TD error.
func (s *QVStore) Update(sig1 StateSig, a1 int, reward float64, sig2 StateSig, a2 int, alpha, gamma float64) {
	target := reward + gamma*s.Q(sig2, a2)
	for i := range s.vaults {
		v := &s.vaults[i]
		qOld := s.VaultQ(i, sig1[i], a1)
		adj := alpha * (target - qOld) / float64(s.numPlanes)
		for p := range v.planes {
			pl := &v.planes[p]
			idx := s.index(pl, sig1[i])*s.numActions + a1
			pl.table[idx] = s.quantize(pl.table[idx] + adj)
		}
	}
}

// SetQuantization makes the store behave like the paper's 16-bit
// fixed-point hardware: every stored partial Q-value is rounded to a
// multiple of step after each update. step <= 0 restores full precision.
func (s *QVStore) SetQuantization(step float64) { s.quantStep = step }

func (s *QVStore) quantize(x float64) float64 {
	if s.quantStep <= 0 {
		return x
	}
	n := x / s.quantStep
	if n >= 0 {
		return float64(int64(n+0.5)) * s.quantStep
	}
	return float64(int64(n-0.5)) * s.quantStep
}

// StorageBits returns the total Q-value storage in bits assuming the
// paper's 16-bit fixed-point entries (Table 4).
func (s *QVStore) StorageBits() int {
	return len(s.vaults) * s.numPlanes * s.featureDim * s.numActions * 16
}
