package core

// QVStore is the hierarchical, table-based Q-value store of §4.2.1. It is
// organized as one vault per program feature; each vault holds several
// planes (tile-coding tiles). A plane is a small 2-D table indexed by a
// hashed feature value and the action index, storing a partial Q-value.
//
//	Q(φ, A)  = Σ_planes plane[idx_p(φ)][A]      (within a vault)
//	Q(S, A)  = max_vaults Q(φ_i, A)             (Eqn. 3)
//
// The per-plane shifting constants of the paper's tile coding are derived
// deterministically from the store's seed.
//
// The store mirrors the paper's pipelined QVStore search (§4.2.2) in
// software: the plane row index depends only on the feature value, never on
// the action, so a state's (vault, plane) row base offsets are resolved
// ONCE per state into a ResolvedSig, and Q / ArgmaxQ / Update then scan
// contiguous action rows off the precomputed offsets. Each vault's planes
// live in one flat plane-major table for cache locality. PERF.md describes
// the design and its measured effect.

// padCap rounds a scratch buffer's element count up so its allocation
// fills whole 64-byte cache lines. Each simulated core runs its own agent,
// and harness.RunAll runs many concurrently; Go places allocations whose
// size class is a multiple of 64 on line boundaries, so padded scratch
// buffers from different cores never share a cache line (no false
// sharing). Slice lengths are unchanged — only capacity is padded.
func padCap(n, elemSize int) int { return ((n*elemSize + 63) &^ 63) / elemSize }

// qvMix is a 64-bit finalizer (splitmix64-style) used to hash feature
// values into plane indices.
func qvMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vault holds one feature's planes flattened into a single plane-major
// table: plane p's row r occupies data[p*planeSize + r*numActions : ... +
// numActions].
type vault struct {
	feature Feature
	shifts  []uint64 // per-plane shifting constants (tile offsets)
	data    []float64
}

// QVStore records Q-values for every observed state-action pair.
//
// A QVStore belongs to one agent: the resolve/scan scratch buffers make it
// NOT safe for concurrent use (the harness runs one agent per simulated
// core, each with its own store).
type QVStore struct {
	vaults     []vault
	featureDim int
	numActions int
	numPlanes  int
	initQ      float64
	quantStep  float64 // 0 = full precision
	mask       uint64  // featureDim - 1
	planeSize  int     // featureDim * numActions

	// Scratch buffers reused by the search and by the StateSig-based
	// convenience API, so the hot path allocates nothing.
	vbuf, maxbuf []float64
	rs1, rs2     ResolvedSig
}

// NewQVStore builds a store for the given features with featureDim entries
// per plane (128 in the basic config), numPlanes planes per vault, and
// initQ as the optimistic initial state-action Q-value (1/(1-γ),
// Algorithm 1 line 2). seed fixes the per-plane shifting constants.
func NewQVStore(features []Feature, featureDim, numActions, numPlanes int, initQ float64, seed uint64) *QVStore {
	if featureDim <= 0 || featureDim&(featureDim-1) != 0 {
		panic("core: QVStore feature dimension must be a power of two")
	}
	if numActions <= 0 || numPlanes <= 0 || len(features) == 0 {
		panic("core: QVStore needs features, actions and planes")
	}
	s := &QVStore{
		featureDim: featureDim,
		numActions: numActions,
		numPlanes:  numPlanes,
		initQ:      initQ,
		mask:       uint64(featureDim - 1),
		planeSize:  featureDim * numActions,
		vbuf:       make([]float64, numActions, padCap(numActions, 8)),
		maxbuf:     make([]float64, numActions, padCap(numActions, 8)),
	}
	perPlane := initQ / float64(numPlanes)
	for vi, f := range features {
		v := vault{
			feature: f,
			shifts:  make([]uint64, numPlanes),
			data:    make([]float64, numPlanes*s.planeSize),
		}
		for p := 0; p < numPlanes; p++ {
			v.shifts[p] = qvMix(seed + uint64(vi)*1000003 + uint64(p)*7919)
		}
		for i := range v.data {
			v.data[i] = perPlane
		}
		s.vaults = append(s.vaults, v)
	}
	s.rs1 = s.NewResolvedSig()
	s.rs2 = s.NewResolvedSig()
	return s
}

// Features returns the features the store's vaults correspond to.
func (s *QVStore) Features() []Feature {
	out := make([]Feature, len(s.vaults))
	for i, v := range s.vaults {
		out[i] = v.feature
	}
	return out
}

// rowBase computes the flat-table base offset of the action row that a
// feature value hashes to in plane p of a vault.
func (s *QVStore) rowBase(shift uint64, p int, featVal uint64) int32 {
	idx := int(qvMix(featVal+shift) & s.mask)
	return int32(p*s.planeSize + idx*s.numActions)
}

// StateSig precomputes the per-vault feature values of a state: this is
// what EQ entries carry so Q-value updates after eviction see the original
// state.
type StateSig []uint64

// Signature extracts the state signature (one feature value per vault).
// It allocates; the agent's hot path uses ResolveState instead.
func (s *QVStore) Signature(st *State) StateSig {
	sig := make(StateSig, len(s.vaults))
	for i, v := range s.vaults {
		sig[i] = v.feature.Value(st)
	}
	return sig
}

// ResolvedSig is a state signature with every (vault, plane) pair's row
// base offset resolved: offs[v*numPlanes+p] indexes vault v's flat table.
// Resolving costs one hash per (vault, plane); afterwards every Q lookup,
// search and update is hash-free and scans contiguous rows.
type ResolvedSig struct {
	vals []uint64
	offs []int32
}

// Vals returns the raw per-vault feature values.
func (r *ResolvedSig) Vals() StateSig { return StateSig(r.vals) }

// copyFrom replaces r's contents, reusing its buffers.
func (r *ResolvedSig) copyFrom(vals []uint64, offs []int32) {
	r.vals = append(r.vals[:0], vals...)
	r.offs = append(r.offs[:0], offs...)
}

// NewResolvedSig allocates a ResolvedSig sized for the store, for reuse via
// ResolveState / ResolveSig.
func (s *QVStore) NewResolvedSig() ResolvedSig {
	return ResolvedSig{
		vals: make([]uint64, len(s.vaults), padCap(len(s.vaults), 8)),
		offs: make([]int32, len(s.vaults)*s.numPlanes, padCap(len(s.vaults)*s.numPlanes, 4)),
	}
}

// ResolveState extracts the state's feature values and resolves all row
// base offsets into r without allocating.
func (s *QVStore) ResolveState(st *State, r *ResolvedSig) {
	r.vals = r.vals[:0]
	r.offs = r.offs[:0]
	for vi := range s.vaults {
		v := &s.vaults[vi]
		fv := v.feature.Value(st)
		r.vals = append(r.vals, fv)
		for p, shift := range v.shifts {
			r.offs = append(r.offs, s.rowBase(shift, p, fv))
		}
	}
}

// ResolveSig resolves an already-extracted raw signature into r.
func (s *QVStore) ResolveSig(sig StateSig, r *ResolvedSig) {
	r.vals = append(r.vals[:0], sig...)
	r.offs = r.offs[:0]
	for vi := range s.vaults {
		v := &s.vaults[vi]
		for p, shift := range v.shifts {
			r.offs = append(r.offs, s.rowBase(shift, p, sig[vi]))
		}
	}
}

// VaultQ returns Q(φ_i, A) for vault i.
func (s *QVStore) VaultQ(i int, featVal uint64, action int) float64 {
	v := &s.vaults[i]
	var q float64
	for p, shift := range v.shifts {
		q += v.data[int(s.rowBase(shift, p, featVal))+action]
	}
	return q
}

// QResolved returns the state-action value — the maximum constituent
// feature-action Q-value (Eqn. 3) — using precomputed row offsets.
func (s *QVStore) QResolved(r *ResolvedSig, action int) float64 {
	var best float64
	for vi := range s.vaults {
		data := s.vaults[vi].data
		base := vi * s.numPlanes
		var q float64
		for p := 0; p < s.numPlanes; p++ {
			q += data[int(r.offs[base+p])+action]
		}
		if vi == 0 || q > best {
			best = q
		}
	}
	return best
}

// ArgmaxQResolved returns the action with the highest Q-value and that
// value, mirroring the pipelined QVStore search of §4.2.2: every plane row
// a state resolves to is a contiguous run of numActions partial Q-values,
// summed per vault and max-combined across vaults with no hashing.
func (s *QVStore) ArgmaxQResolved(r *ResolvedSig) (action int, q float64) {
	nA := s.numActions
	vb, mx := s.vbuf, s.maxbuf
	for vi := range s.vaults {
		data := s.vaults[vi].data
		base := vi * s.numPlanes
		// Vault 0 accumulates straight into the max buffer; later vaults
		// use the scratch and max-merge. The first plane initializes the
		// accumulator (x == 0+x bitwise for every table value; the store
		// never holds -0, see the resolved equivalence test).
		buf := vb
		if vi == 0 {
			buf = mx
		}
		off := int(r.offs[base])
		copy(buf, data[off:off+nA])
		for p := 1; p < s.numPlanes; p++ {
			off = int(r.offs[base+p])
			row := data[off : off+nA]
			acc := buf[:len(row)] // equal-length reslice elides bounds checks
			for a, pq := range row {
				acc[a] += pq
			}
		}
		if vi > 0 {
			mxa := mx[:len(buf)]
			for a, vq := range buf {
				if vq > mxa[a] {
					mxa[a] = vq
				}
			}
		}
	}
	action, q = 0, mx[0]
	for a := 1; a < nA; a++ {
		if mx[a] > q {
			action, q = a, mx[a]
		}
	}
	return action, q
}

// UpdateResolved applies the SARSA temporal-difference step to Q(S1, A1):
//
//	Q(S1,A1) += α [R + γ Q(S2,A2) − Q(S1,A1)]
//
// The correction is distributed equally across each vault's planes so the
// per-vault sum moves by the full α-scaled TD error. Both signatures must
// carry resolved offsets.
func (s *QVStore) UpdateResolved(r1 *ResolvedSig, a1 int, reward float64, r2 *ResolvedSig, a2 int, alpha, gamma float64) {
	s.UpdateResolvedTarget(r1, a1, reward+gamma*s.QResolved(r2, a2), alpha)
}

// Q returns the state-action value for a raw signature (Eqn. 3). It
// resolves into internal scratch; ResolveSig + QResolved avoids the
// per-call hashing when the same state is queried repeatedly.
func (s *QVStore) Q(sig StateSig, action int) float64 {
	s.ResolveSig(sig, &s.rs1)
	return s.QResolved(&s.rs1, action)
}

// ArgmaxQ returns the best action and its Q-value for a raw signature.
func (s *QVStore) ArgmaxQ(sig StateSig) (action int, q float64) {
	s.ResolveSig(sig, &s.rs1)
	return s.ArgmaxQResolved(&s.rs1)
}

// Update applies the SARSA step for raw signatures.
func (s *QVStore) Update(sig1 StateSig, a1 int, reward float64, sig2 StateSig, a2 int, alpha, gamma float64) {
	s.ResolveSig(sig1, &s.rs1)
	s.ResolveSig(sig2, &s.rs2)
	s.UpdateResolved(&s.rs1, a1, reward, &s.rs2, a2, alpha, gamma)
}

// SetQuantization makes the store behave like the paper's 16-bit
// fixed-point hardware: every stored partial Q-value is rounded to a
// multiple of step after each update. step <= 0 restores full precision.
func (s *QVStore) SetQuantization(step float64) { s.quantStep = step }

func (s *QVStore) quantize(x float64) float64 {
	if s.quantStep <= 0 {
		return x
	}
	n := x / s.quantStep
	if n >= 0 {
		return float64(int64(n+0.5)) * s.quantStep
	}
	return float64(int64(n-0.5)) * s.quantStep
}

// StorageBits returns the total Q-value storage in bits assuming the
// paper's 16-bit fixed-point entries (Table 4).
func (s *QVStore) StorageBits() int {
	return len(s.vaults) * s.numPlanes * s.featureDim * s.numActions * 16
}
