package core

import (
	"testing"

	"pythia/internal/mem"
	"pythia/internal/prefetch"
)

type fixedBW float64

func (f fixedBW) BandwidthUtil() float64 { return float64(f) }

// runStream feeds a pure +1 line stream (fresh pages) to a Pythia agent,
// filling every prefetch immediately.
func runStream(p *Pythia, n int) {
	line := uint64(1 << 22)
	for i := 0; i < n; i++ {
		for _, c := range p.Train(prefetch.Access{PC: 0x400, Line: line}) {
			p.Fill(c)
		}
		line++
	}
}

// runRandom feeds pattern-free accesses.
func runRandom(p *Pythia, n int) {
	x := uint64(17)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		for _, c := range p.Train(prefetch.Access{PC: 0x500, Line: x >> 30}) {
			p.Fill(c)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := BasicConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("basic config invalid: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.Features = nil },
		func(c *Config) { c.Actions = nil },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 2 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.Epsilon = -0.1 },
		func(c *Config) { c.EQSize = 0 },
		func(c *Config) { c.PlanesPerVault = 0 },
		func(c *Config) { c.FeatureDim = 100 },
		func(c *Config) { c.TrackerPages = 3 },
		func(c *Config) { c.Actions = []int{70} },
		func(c *Config) { c.MaxDegree = 0 },
	}
	for i, m := range mutate {
		c := BasicConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	c := BasicConfig()
	c.Actions = nil
	if _, err := New(c, nil); err == nil {
		t.Error("New accepted an invalid config")
	}
}

func TestInitQ(t *testing.T) {
	c := BasicConfig()
	want := 1 / (1 - c.Gamma)
	if got := c.InitQ(); got != want {
		t.Errorf("InitQ = %v, want %v", got, want)
	}
}

func TestPythiaLearnsStream(t *testing.T) {
	p := MustNew(BasicConfig(), fixedBW(0.1))
	runStream(p, 20000)
	st := p.Stats()
	if st.RewardAT+st.RewardAL == 0 {
		t.Fatal("no accurate rewards on a pure stream")
	}
	// The learned policy must favor positive offsets.
	actions := p.Config().Actions
	var pos, neg int64
	for i, c := range st.ActionCounts {
		if actions[i] > 0 {
			pos += c
		}
		if actions[i] < 0 {
			neg += c
		}
	}
	if pos <= neg*2 {
		t.Errorf("stream policy not positive-biased: pos=%d neg=%d", pos, neg)
	}
	acc := float64(st.RewardAT+st.RewardAL) / float64(st.PrefetchTaken)
	if acc < 0.5 {
		t.Errorf("stream accuracy %.2f too low", acc)
	}
}

func TestPythiaLearnsNoPrefetchOnRandom(t *testing.T) {
	p := MustNew(BasicConfig(), fixedBW(0.1))
	runRandom(p, 20000)
	st := p.Stats()
	// On pattern-free traffic the agent should strongly prefer no-prefetch
	// (R_NP beats expected R_IN).
	if st.NoPrefetch < st.Demands/4 {
		t.Errorf("no-prefetch chosen only %d/%d times on random traffic",
			st.NoPrefetch, st.Demands)
	}
}

func TestPythiaBandwidthChangesRewardVariant(t *testing.T) {
	low := MustNew(BasicConfig(), fixedBW(0.05))
	high := MustNew(BasicConfig(), fixedBW(0.95))
	runRandom(low, 3000)
	runRandom(high, 3000)
	if s := low.Stats(); s.RewardINHigh+s.RewardNPHigh != 0 {
		t.Errorf("low-bandwidth run used high-BW rewards: %+v", s)
	}
	if s := high.Stats(); s.RewardINLow+s.RewardNPLow != 0 {
		t.Errorf("high-bandwidth run used low-BW rewards: %+v", s)
	}
}

func TestPythiaOutOfPageGetsCL(t *testing.T) {
	c := BasicConfig()
	c.Actions = []int{32} // only a far offset: page-end triggers must go CL
	c.Epsilon = 0
	p := MustNew(c, nil)
	// Access near page end repeatedly.
	for i := 0; i < 100; i++ {
		page := uint64(1000 + i)
		p.Train(prefetch.Access{PC: 1, Line: page*mem.LinesPerPage + mem.LinesPerPage - 1})
	}
	if st := p.Stats(); st.RewardCL != 100 {
		t.Errorf("CL rewards = %d, want 100", st.RewardCL)
	}
}

func TestPythiaPrefetchWithinPage(t *testing.T) {
	p := MustNew(BasicConfig(), nil)
	line := uint64(1 << 30)
	for i := 0; i < 5000; i++ {
		for _, c := range p.Train(prefetch.Access{PC: 2, Line: line}) {
			if !mem.SamePage(c, line) {
				t.Fatalf("prefetch %d crossed the page of %d", c, line)
			}
		}
		line++
	}
}

func TestPythiaDeterministic(t *testing.T) {
	run := func() Stats {
		p := MustNew(BasicConfig(), fixedBW(0.2))
		runStream(p, 5000)
		return p.Stats()
	}
	a, b := run(), run()
	if a.PrefetchTaken != b.PrefetchTaken || a.RewardAT != b.RewardAT || a.Explored != b.Explored {
		t.Errorf("agent not deterministic: %+v vs %+v", a, b)
	}
}

func TestPythiaEpsilonExploration(t *testing.T) {
	c := BasicConfig()
	c.Epsilon = 0.5
	p := MustNew(c, nil)
	runStream(p, 4000)
	st := p.Stats()
	frac := float64(st.Explored) / float64(st.Demands)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("exploration fraction %.2f, want ~0.5", frac)
	}
}

func TestPythiaDynDegree(t *testing.T) {
	on := BasicConfig()
	off := BasicConfig()
	off.DynDegree = false
	pOn := MustNew(on, fixedBW(0.1))
	pOff := MustNew(off, fixedBW(0.1))
	countOn, countOff := 0, 0
	line := uint64(1 << 26)
	for i := 0; i < 20000; i++ {
		countOn += len(pOn.Train(prefetch.Access{PC: 3, Line: line}))
		countOff += len(pOff.Train(prefetch.Access{PC: 3, Line: line}))
		line++
	}
	if countOn <= countOff {
		t.Errorf("dynamic degree should issue more on a confident stream: on=%d off=%d", countOn, countOff)
	}
	if pOff.Stats().PrefetchTaken > 0 && countOff > int(pOff.Stats().PrefetchTaken) {
		t.Errorf("degree-1 agent issued %d candidates for %d actions", countOff, pOff.Stats().PrefetchTaken)
	}
}

func TestQWatchRecords(t *testing.T) {
	p := MustNew(BasicConfig(), nil)
	feat := FeaturePCDelta.Value(&State{PC: 0x400, Delta: 1})
	w := p.WatchFeature(0, feat, 1)
	runStream(p, 5000)
	if len(w.Series) == 0 {
		t.Fatal("watch recorded nothing")
	}
	row := w.Series[len(w.Series)-1]
	if len(row) != len(p.Config().Actions) {
		t.Errorf("series row has %d actions", len(row))
	}
}

func TestCPHWIsMyopic(t *testing.T) {
	p := NewCPHW(nil)
	if p.Config().Gamma != 0 {
		t.Errorf("CP-HW gamma = %v, want 0 (contextual bandit)", p.Config().Gamma)
	}
	if len(p.Config().Features) != 1 {
		t.Errorf("CP-HW should use a single context feature")
	}
	if len(p.Config().Actions) != 127 {
		t.Errorf("CP-HW should carry the unpruned [-63,63] action space, got %d", len(p.Config().Actions))
	}
	r := p.Config().Rewards
	if r.INHigh != r.INLow || r.NPHigh != r.NPLow {
		t.Error("CP-HW must be bandwidth-oblivious")
	}
	runStream(p, 5000)
	if p.Stats().RewardAT+p.Stats().RewardAL == 0 {
		t.Error("CP-HW failed to learn a stream at all")
	}
}

func TestStrictConfigRewards(t *testing.T) {
	s := StrictConfig()
	b := BasicConfig()
	if s.Rewards.INHigh >= b.Rewards.INHigh || s.Rewards.INLow >= b.Rewards.INLow {
		t.Error("strict config must punish inaccuracy harder")
	}
	if s.Rewards.NPHigh < b.Rewards.NPHigh || s.Rewards.NPLow < b.Rewards.NPLow {
		t.Error("strict config must make no-prefetch more attractive")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBandwidthObliviousCollapsesVariants(t *testing.T) {
	c := BandwidthObliviousConfig()
	if c.Rewards.INHigh != c.Rewards.INLow || c.Rewards.NPHigh != c.Rewards.NPLow {
		t.Error("oblivious config must collapse the bandwidth variants")
	}
}

func TestWithFeatures(t *testing.T) {
	c := BasicConfig().WithFeatures("x", FeaturePCDelta)
	if c.Name != "x" || len(c.Features) != 1 {
		t.Errorf("WithFeatures produced %+v", c)
	}
	// Original must be unchanged (value semantics).
	if len(BasicConfig().Features) != 2 {
		t.Error("BasicConfig mutated")
	}
}

func TestPythiaNameAndAccessors(t *testing.T) {
	p := MustNew(BasicConfig(), nil)
	if p.Name() != "pythia" {
		t.Errorf("Name() = %q", p.Name())
	}
	if p.QVStore() == nil {
		t.Error("QVStore() nil")
	}
	st := p.Stats()
	st.ActionCounts[0] = 999999
	if p.Stats().ActionCounts[0] == 999999 {
		t.Error("Stats() must return a copy")
	}
}

func TestStrictLearnsMoreNoPrefetchThanBasic(t *testing.T) {
	basic := MustNew(BasicConfig(), fixedBW(0.9))
	strict := MustNew(StrictConfig(), fixedBW(0.9))
	runRandom(basic, 15000)
	runRandom(strict, 15000)
	if strict.Stats().NoPrefetch <= basic.Stats().NoPrefetch {
		t.Errorf("strict NP=%d should exceed basic NP=%d on random traffic under high bandwidth",
			strict.Stats().NoPrefetch, basic.Stats().NoPrefetch)
	}
}

// prefetchAccess builds a training access (helper shared by quantization
// tests).
func prefetchAccess(pc, line uint64) prefetch.Access {
	return prefetch.Access{PC: pc, Line: line}
}

func TestDecisionAccounting(t *testing.T) {
	p := MustNew(BasicConfig(), fixedBW(0.2))
	runStream(p, 8000)
	runRandom(p, 8000)
	st := p.Stats()
	// Every demand selects exactly one action.
	var total int64
	for _, c := range st.ActionCounts {
		total += c
	}
	if total != st.Demands {
		t.Errorf("action selections %d != demands %d", total, st.Demands)
	}
	// Every demand is classified as prefetch, no-prefetch, or out-of-page.
	if st.PrefetchTaken+st.NoPrefetch+st.OutOfPage != st.Demands {
		t.Errorf("decision classes %d+%d+%d != demands %d",
			st.PrefetchTaken, st.NoPrefetch, st.OutOfPage, st.Demands)
	}
	// Immediate rewards match their decision classes.
	if st.RewardCL != st.OutOfPage {
		t.Errorf("CL rewards %d != out-of-page %d", st.RewardCL, st.OutOfPage)
	}
	if st.RewardNPHigh+st.RewardNPLow != st.NoPrefetch {
		t.Errorf("NP rewards != no-prefetch decisions")
	}
	// AT+AL can never exceed prefetches taken.
	if st.RewardAT+st.RewardAL > st.PrefetchTaken {
		t.Errorf("accurate rewards %d exceed prefetches %d",
			st.RewardAT+st.RewardAL, st.PrefetchTaken)
	}
	// Q-updates lag demands by at most the EQ depth.
	if st.QUpdates > st.Demands || st.Demands-st.QUpdates > int64(p.Config().EQSize)+1 {
		t.Errorf("updates %d inconsistent with demands %d and EQ %d",
			st.QUpdates, st.Demands, p.Config().EQSize)
	}
}

func TestTimelinessClassification(t *testing.T) {
	// Without fills, accurate prefetches must all be classified late (AL);
	// with immediate fills, timely (AT).
	noFill := MustNew(BasicConfig(), nil)
	line := uint64(1 << 23)
	for i := 0; i < 8000; i++ {
		noFill.Train(prefetch.Access{PC: 9, Line: line}) // never call Fill
		line++
	}
	if st := noFill.Stats(); st.RewardAT != 0 {
		t.Errorf("AT=%d without any fills", st.RewardAT)
	}
	withFill := MustNew(BasicConfig(), nil)
	runStream(withFill, 8000)
	st := withFill.Stats()
	if st.RewardAT == 0 || st.RewardAT < st.RewardAL {
		t.Errorf("immediate fills should make AT dominate: AT=%d AL=%d", st.RewardAT, st.RewardAL)
	}
}
