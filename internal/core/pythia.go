package core

import (
	"math/rand"

	"pythia/internal/mem"
	"pythia/internal/prefetch"
)

// Stats counts Pythia's decisions and reward assignments, used by tests and
// the Fig. 13 case study.
type Stats struct {
	Demands       int64
	PrefetchTaken int64
	NoPrefetch    int64
	OutOfPage     int64
	Explored      int64

	RewardAT, RewardAL, RewardCL int64
	RewardINHigh, RewardINLow    int64
	RewardNPHigh, RewardNPLow    int64

	QUpdates int64

	// ActionCounts tallies how often each action index was selected.
	ActionCounts []int64
}

// Pythia is the RL-based prefetcher (Algorithm 1). It implements
// prefetch.Prefetcher and is driven by the cache hierarchy at the L2, as in
// the paper's methodology.
type Pythia struct {
	cfg     Config
	sys     prefetch.System
	qv      *QVStore
	eq      *EQ
	tracker *Tracker
	rng     *rand.Rand
	stats   Stats

	// sigRS and outBuf are reused across Train calls so the hot path is
	// allocation-free: the EQ copies signatures on insert, and callers
	// consume the returned candidate slice before the next Train.
	sigRS  ResolvedSig
	outBuf []uint64

	// qTrace optionally records per-update Q-values of a watched feature
	// value (Fig. 13).
	watch *QWatch
}

// New builds a Pythia agent. sys supplies the bandwidth feedback; pass
// prefetch.NilSystem() for a standalone agent.
func New(cfg Config, sys prefetch.System) (*Pythia, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sys == nil {
		sys = prefetch.NilSystem()
	}
	p := &Pythia{
		cfg:     cfg,
		sys:     sys,
		qv:      NewQVStore(cfg.Features, cfg.FeatureDim, len(cfg.Actions), cfg.PlanesPerVault, cfg.InitQ(), uint64(cfg.Seed)),
		eq:      NewEQ(cfg.EQSize),
		tracker: NewTracker(cfg.TrackerPages),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.FixedPoint {
		// Q8.8: 16-bit entries with 8 fraction bits, matching Table 4's
		// Q-value width.
		p.qv.SetQuantization(1.0 / 256)
	}
	p.sigRS = p.qv.NewResolvedSig()
	p.outBuf = make([]uint64, 0, cfg.MaxDegree+1)
	p.stats.ActionCounts = make([]int64, len(cfg.Actions))
	return p, nil
}

// MustNew is New but panics on config errors; for tests and tables.
func MustNew(cfg Config, sys prefetch.System) *Pythia {
	p, err := New(cfg, sys)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Pythia) Name() string { return p.cfg.Name }

// Config returns the agent's configuration.
func (p *Pythia) Config() Config { return p.cfg }

// Stats returns a copy of the decision statistics.
func (p *Pythia) Stats() Stats {
	s := p.stats
	s.ActionCounts = append([]int64(nil), p.stats.ActionCounts...)
	return s
}

// QVStore exposes the Q-value store for introspection (case studies,
// tests).
func (p *Pythia) QVStore() *QVStore { return p.qv }

// highBW reports whether the bandwidth monitor is above the configured
// threshold, selecting the High reward variants.
func (p *Pythia) highBW() bool {
	return p.sys.BandwidthUtil() >= p.cfg.HighBWThreshold
}

// Train implements prefetch.Prefetcher: Algorithm 1's Train_and_Predict,
// called for every demand request observed at the L2.
func (p *Pythia) Train(a prefetch.Access) []uint64 {
	p.stats.Demands++
	r := p.cfg.Rewards

	// (1) Reward in-flight actions whose prefetched line is now demanded.
	if matched, filled := p.eq.OnDemand(a.Line, r.AT, r.AL); matched {
		if filled {
			p.stats.RewardAT++
		} else {
			p.stats.RewardAL++
		}
	}

	// (2) Extract the state vector and resolve its QVStore row offsets
	// once; every lookup, search and update below reuses them.
	st := p.tracker.Observe(a.PC, a.Line)
	sig := &p.sigRS
	p.qv.ResolveState(&st, sig)

	// (3) ε-greedy action selection. An exploit-path scan leaves every
	// action's Q-value for sig's rows in the store's scan buffer; step (6)
	// reuses it when the SARSA target needs those same rows.
	var action int
	var q float64
	scanned := false
	if p.rng.Float64() <= p.cfg.Epsilon {
		action = p.rng.Intn(len(p.cfg.Actions))
		q = p.qv.QResolved(sig, action)
		p.stats.Explored++
	} else {
		action, q = p.qv.ArgmaxQResolved(sig)
		scanned = true
	}
	p.stats.ActionCounts[action]++
	offset := p.cfg.Actions[action]

	// (4) Generate the prefetch and (5) create the EQ entry.
	out := p.outBuf[:0]
	var evicted Evicted
	switch {
	case offset == 0:
		p.stats.NoPrefetch++
		rw := r.NPLow
		if p.highBW() {
			rw = r.NPHigh
			p.stats.RewardNPHigh++
		} else {
			p.stats.RewardNPLow++
		}
		evicted = p.eq.InsertResolved(sig, action, 0, false, rw, true)
	default:
		cand := uint64(int64(a.Line) + int64(offset))
		if !mem.SamePage(a.Line, cand) {
			p.stats.OutOfPage++
			p.stats.RewardCL++
			evicted = p.eq.InsertResolved(sig, action, 0, false, r.CL, true)
		} else {
			p.stats.PrefetchTaken++
			out = append(out, cand)
			// Confidence-based dynamic degree: high Q-values issue extra
			// prefetches at consecutive multiples of the offset; only the
			// first address is tracked in the EQ, so learning is unchanged.
			deg := p.dynDegree(q, offset)
			for extra := 2; extra <= deg; extra++ {
				next := uint64(int64(a.Line) + int64(offset)*int64(extra))
				if !mem.SamePage(a.Line, next) {
					break
				}
				out = append(out, next)
			}
			evicted = p.eq.InsertResolved(sig, action, cand, true, 0, false)
		}
	}
	p.outBuf = out

	// (6) SARSA update with the evicted entry.
	if evicted.Valid {
		reward := evicted.Reward
		if !evicted.HadReward {
			if p.highBW() {
				reward = r.INHigh
				p.stats.RewardINHigh++
			} else {
				reward = r.INLow
				p.stats.RewardINLow++
			}
		}
		if sig2, a2, ok := p.eq.HeadResolved(); ok {
			if scanned && SameRows(sig2, sig) {
				// S2 resolves to the rows the action-selection scan just
				// walked, and no update has run since, so the target's
				// Q(S2, A2) comes off the scan buffer bitwise (ScanQ)
				// instead of re-walking the tables. On repetitive demand
				// streams — a striding PC re-observing the same state —
				// this folds most SARSA targets into the selection scan.
				target := reward + p.cfg.Gamma*p.qv.ScanQ(a2)
				p.qv.UpdateResolvedTarget(evicted.rs, evicted.Action, target, p.cfg.Alpha)
			} else {
				p.qv.UpdateResolved(evicted.rs, evicted.Action, reward, sig2, a2, p.cfg.Alpha, p.cfg.Gamma)
			}
			p.stats.QUpdates++
			if p.watch != nil {
				p.watch.observe(p.qv, evicted.Sig)
			}
		}
	}
	return out
}

// dynDegree returns the prefetch degree for a chosen action's Q-value (1 =
// no extra prefetches; the caller issues offset multiples [2..deg]): Q at
// or above ~60% of the theoretical maximum R_AT/(1−γ) earns the full
// configured degree, lower confidence less. Degree applies only to
// near-stride offsets (multiples of a far offset are not part of the
// learned pattern, e.g. GemsFDTD's one-shot +23), and collapses to 1 under
// high bandwidth pressure — the coverage-vs-accuracy trade the paper's
// §6.3.3 describes.
func (p *Pythia) dynDegree(q float64, offset int) int {
	if !p.cfg.DynDegree || p.cfg.MaxDegree <= 1 {
		return 1
	}
	if offset > 8 || offset < -8 {
		return 1
	}
	if p.highBW() {
		return 1
	}
	qMax := p.cfg.Rewards.AT / (1 - p.cfg.Gamma)
	if qMax <= 0 || q <= 0 {
		return 1
	}
	frac := q / qMax
	switch {
	case frac >= 0.60:
		return p.cfg.MaxDegree
	case frac >= 0.33:
		return (p.cfg.MaxDegree + 1) / 2
	}
	return 1
}

// Fill implements prefetch.Prefetcher: marks the matching EQ entry filled
// (Algorithm 1 Prefetch_Fill).
func (p *Pythia) Fill(line uint64) {
	p.eq.OnFill(line)
}

// QWatch records Q-value trajectories for a specific watched vault/feature
// value as updates happen — the instrument behind Fig. 13's Q-value curves.
type QWatch struct {
	vault   int
	featVal uint64
	// Series holds, per recorded update, the Q-values of every action.
	Series [][]float64
	// Every records one sample per N matching updates.
	Every int
	count int
}

// WatchFeature starts recording Q-values of vault `vault` whenever a
// Q-update touches the given feature value, sampling every `every` matches.
func (p *Pythia) WatchFeature(vault int, featVal uint64, every int) *QWatch {
	if every <= 0 {
		every = 1
	}
	p.watch = &QWatch{vault: vault, featVal: featVal, Every: every}
	return p.watch
}

func (w *QWatch) observe(qv *QVStore, sig StateSig) {
	if w.vault >= len(sig) || sig[w.vault] != w.featVal {
		return
	}
	w.count++
	if w.count%w.Every != 0 {
		return
	}
	row := make([]float64, qv.numActions)
	for a := 0; a < qv.numActions; a++ {
		row[a] = qv.VaultQ(w.vault, w.featVal, a)
	}
	w.Series = append(w.Series, row)
}

// NewCPHW builds the hardware-context contextual-bandit baseline of the
// paper's §4.5 / Appendix B.4: the same engine with γ=0 (no long-term
// credit), a single PC+Delta context feature, bandwidth-oblivious rewards,
// and — CP's defining weakness — an unpruned action space. CP acts on full
// cacheline addresses; within this in-page framework that corresponds to
// every offset in [-63, 63], which inflates training time and storage
// exactly as §4.5 argues.
func NewCPHW(sys prefetch.System) *Pythia {
	c := BasicConfig()
	c.Name = "cp-hw"
	c.Features = []Feature{FeaturePCDelta}
	c.Gamma = 0 // myopic: no long-term credit
	c.Actions = nil
	for d := -63; d <= 63; d++ {
		c.Actions = append(c.Actions, d)
	}
	c.DynDegree = false
	// Alpha/epsilon keep the same horizon scaling as basic Pythia so the
	// comparison isolates the formulation, not the learning speed.
	c.Rewards = Rewards{AT: 20, AL: 12, CL: -12, INHigh: -8, INLow: -8, NPHigh: -2, NPLow: -2}
	return MustNew(c, sys)
}
