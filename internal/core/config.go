package core

import "fmt"

// Rewards holds the seven discrete reward levels of §3.1. The High/Low
// variants of Inaccurate and NoPrefetch encode memory-bandwidth awareness:
// Pythia picks between them using the DRAM bus monitor.
type Rewards struct {
	// AT: accurate and timely — demanded after the prefetch fill.
	AT float64
	// AL: accurate but late — demanded before the prefetch fill.
	AL float64
	// CL: loss of coverage — the chosen offset left the physical page.
	CL float64
	// INHigh / INLow: inaccurate under high / low bandwidth usage.
	INHigh, INLow float64
	// NPHigh / NPLow: no-prefetch under high / low bandwidth usage.
	NPHigh, NPLow float64
}

// Config is Pythia's "configuration registers": everything the paper says
// is customizable in silicon — the feature vector, the action list, the
// reward level values and the hyperparameters — plus the structural sizes
// fixed at design time.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// Features is the state vector (one QVStore vault each).
	Features []Feature
	// Actions is the prefetch-offset list; offset 0 means no prefetch.
	Actions []int

	// Rewards are the reward level values.
	Rewards Rewards

	// Alpha, Gamma, Epsilon are the SARSA learning rate, discount factor
	// and exploration rate.
	Alpha, Gamma, Epsilon float64

	// EQSize is the evaluation queue depth.
	EQSize int
	// PlanesPerVault is the tile-coding plane count.
	PlanesPerVault int
	// FeatureDim is the rows per plane.
	FeatureDim int

	// HighBWThreshold is the DRAM bus utilization above which the High
	// reward variants apply.
	HighBWThreshold float64

	// TrackerPages sizes the per-page delta tracker.
	TrackerPages int

	// FixedPoint makes the QVStore behave like the 16-bit fixed-point
	// hardware tables (Q8.8 quantization of every stored partial Q-value);
	// off by default — the float model is the reference, the fixed-point
	// mode validates that hardware precision suffices (Table 4 entry width).
	FixedPoint bool

	// DynDegree enables confidence-based dynamic prefetch degree, as in
	// the SAFARI artifact implementation: when the chosen action's Q-value
	// is high relative to the theoretical maximum R_AT/(1−γ), Pythia issues
	// up to MaxDegree prefetches at consecutive multiples of the offset.
	DynDegree bool
	// MaxDegree caps the dynamic degree (>=1).
	MaxDegree int

	// Seed fixes the ε-greedy RNG and tile shifting constants.
	Seed int64
}

// BasicConfig returns the basic Pythia configuration of Table 2, derived in
// the paper by automated design-space exploration.
func BasicConfig() Config {
	return Config{
		Name:     "pythia",
		Features: []Feature{FeaturePCDelta, FeatureLast4Deltas},
		Actions:  []int{-6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32},
		Rewards: Rewards{
			AT: 20, AL: 12, CL: -12,
			INHigh: -14, INLow: -8,
			NPHigh: -2, NPLow: -4,
		},
		// The paper derives alpha=0.0065 and epsilon=0.002 for
		// 500M-instruction simulations; at this library's scaled-down
		// horizons (millions of instructions) the same policy needs a
		// proportionally larger step size and exploration rate to converge.
		// Table 2 reports the paper values; runs use these.
		Alpha:           0.10,
		Gamma:           0.556,
		Epsilon:         0.01,
		EQSize:          256,
		PlanesPerVault:  3,
		FeatureDim:      128,
		HighBWThreshold: 0.75,
		TrackerPages:    1024,
		DynDegree:       true,
		MaxDegree:       6,
		Seed:            1,
	}
}

// PaperHorizonConfig returns BasicConfig with the paper's actual Table 2
// learning hyperparameters, α=0.0065 and ε=0.002. These are derived for
// 500M-instruction simulations and need the long horizons the streaming
// trace pipeline delivers (harness.ScaleLong); at the scaled-down default
// horizons they would leave SARSA under-converged, which is why BasicConfig
// inflates them (DESIGN.md "Horizon scaling").
func PaperHorizonConfig() Config {
	c := BasicConfig()
	c.Name = "pythia-paper"
	c.Alpha = 0.0065
	c.Epsilon = 0.002
	return c
}

// StrictConfig returns the Ligra-tuned "strict" customization of §6.6.1:
// inaccurate prefetches are punished harder and not prefetching is neutral,
// trading coverage for accuracy on bandwidth-hungry graph workloads.
func StrictConfig() Config {
	c := BasicConfig()
	c.Name = "pythia-strict"
	c.Rewards.INHigh = -22
	c.Rewards.INLow = -20
	c.Rewards.NPHigh = 0
	c.Rewards.NPLow = 0
	return c
}

// BandwidthObliviousConfig returns the ablation of §6.3.3: the High/Low
// reward variants are collapsed (R_IN = −8, R_NP = −4), removing the
// system-awareness signal while keeping everything else identical.
func BandwidthObliviousConfig() Config {
	c := BasicConfig()
	c.Name = "pythia-bwobl"
	c.Rewards.INHigh = -8
	c.Rewards.INLow = -8
	c.Rewards.NPHigh = -4
	c.Rewards.NPLow = -4
	return c
}

// WithFeatures returns a copy of the config using a different state vector
// (the paper's online feature customization, §6.6.2).
func (c Config) WithFeatures(name string, fs ...Feature) Config {
	c.Name = name
	c.Features = fs
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Features) == 0 {
		return fmt.Errorf("core: config needs at least one feature")
	}
	if len(c.Actions) == 0 {
		return fmt.Errorf("core: config needs at least one action")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v out of (0,1]", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("core: gamma %v out of [0,1)", c.Gamma)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("core: epsilon %v out of [0,1]", c.Epsilon)
	}
	if c.EQSize <= 0 {
		return fmt.Errorf("core: EQ size must be positive")
	}
	if c.PlanesPerVault <= 0 {
		return fmt.Errorf("core: planes per vault must be positive")
	}
	if c.FeatureDim <= 0 || c.FeatureDim&(c.FeatureDim-1) != 0 {
		return fmt.Errorf("core: feature dimension must be a power of two, got %d", c.FeatureDim)
	}
	if c.TrackerPages <= 0 || c.TrackerPages&(c.TrackerPages-1) != 0 {
		return fmt.Errorf("core: tracker pages must be a power of two, got %d", c.TrackerPages)
	}
	if c.DynDegree && c.MaxDegree < 1 {
		return fmt.Errorf("core: MaxDegree must be >= 1 with DynDegree, got %d", c.MaxDegree)
	}
	for _, a := range c.Actions {
		if a <= -64 || a >= 64 {
			return fmt.Errorf("core: action offset %d outside [-63,63]", a)
		}
	}
	return nil
}

// InitQ returns the optimistic initial Q-value 1/(1−γ) (Algorithm 1).
func (c Config) InitQ() float64 { return 1 / (1 - c.Gamma) }
