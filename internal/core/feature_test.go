package core

import (
	"testing"
	"testing/quick"

	"pythia/internal/mem"
)

func TestAllFeaturesCount(t *testing.T) {
	fs := AllFeatures()
	if len(fs) != 32 {
		t.Errorf("feature space has %d entries, want 32 (4 CF × 8 DF)", len(fs))
	}
	seen := map[Feature]bool{}
	for _, f := range fs {
		if seen[f] {
			t.Errorf("duplicate feature %v", f)
		}
		seen[f] = true
	}
}

func TestFeatureStrings(t *testing.T) {
	cases := map[Feature]string{
		FeaturePCDelta:                  "PC+Delta",
		FeatureLast4Deltas:              "Last4Deltas",
		{CFPC, DFNone}:                  "PC",
		{CFNone, DFNone}:                "Empty",
		{CFPCPath, DFLast4Offsets}:      "PC-path+Last4Offsets",
		{CFPCXorPrev, DFOffsetXorDelta}: "PC^prevPC+Offset^Delta",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", f, got, want)
		}
	}
}

func TestFeatureValueDeterministic(t *testing.T) {
	st := State{PC: 0x400100, Line: 12345, Page: 12345 >> 6, Offset: 5, Delta: -3}
	for _, f := range AllFeatures() {
		if f.Value(&st) != f.Value(&st) {
			t.Errorf("feature %v value not deterministic", f)
		}
	}
}

func TestFeatureValueDiscriminates(t *testing.T) {
	a := State{PC: 0x400100, Delta: 3}
	b := State{PC: 0x400100, Delta: 5}
	c := State{PC: 0x400104, Delta: 3}
	f := FeaturePCDelta
	if f.Value(&a) == f.Value(&b) {
		t.Error("PC+Delta should distinguish deltas")
	}
	if f.Value(&a) == f.Value(&c) {
		t.Error("PC+Delta should distinguish PCs")
	}
}

func TestFeatureValueNegativeDeltaFolds(t *testing.T) {
	a := State{Delta: -1}
	b := State{Delta: 255} // would alias if folding were unsigned-naive
	f := Feature{CFNone, DFDelta}
	// -1 folds to 0xFF by design; delta values are in [-63,63] so this
	// aliasing never occurs for real deltas.
	if f.Value(&a) != f.Value(&b) {
		t.Log("fold differs — acceptable, deltas are bounded")
	}
	c := State{Delta: 1}
	if f.Value(&a) == f.Value(&c) {
		t.Error("-1 and +1 deltas must differ")
	}
}

func TestTrackerDeltaComputation(t *testing.T) {
	tr := NewTracker(256)
	page := uint64(100)
	s1 := tr.Observe(1, page*mem.LinesPerPage+10)
	if s1.Delta != 0 {
		t.Errorf("first touch delta = %d, want 0", s1.Delta)
	}
	s2 := tr.Observe(1, page*mem.LinesPerPage+33)
	if s2.Delta != 23 {
		t.Errorf("delta = %d, want 23", s2.Delta)
	}
	s3 := tr.Observe(1, page*mem.LinesPerPage+30)
	if s3.Delta != -3 {
		t.Errorf("delta = %d, want -3", s3.Delta)
	}
}

func TestTrackerPageLocalHistories(t *testing.T) {
	tr := NewTracker(256)
	pageA, pageB := uint64(10), uint64(20)
	// Interleave two pages with different delta patterns.
	tr.Observe(1, pageA*mem.LinesPerPage+0)
	tr.Observe(1, pageB*mem.LinesPerPage+0)
	tr.Observe(1, pageA*mem.LinesPerPage+5)        // A: +5
	tr.Observe(1, pageB*mem.LinesPerPage+9)        // B: +9
	sA := tr.Observe(1, pageA*mem.LinesPerPage+10) // A: +5
	if sA.LastDeltas[0] != 5 || sA.LastDeltas[1] != 5 {
		t.Errorf("page A deltas %v polluted by page B", sA.LastDeltas)
	}
	sB := tr.Observe(1, pageB*mem.LinesPerPage+18) // B: +9
	if sB.LastDeltas[0] != 9 || sB.LastDeltas[1] != 9 {
		t.Errorf("page B deltas %v polluted by page A", sB.LastDeltas)
	}
}

func TestTrackerPCPath(t *testing.T) {
	tr := NewTracker(256)
	tr.Observe(0x100, 1)
	tr.Observe(0x200, 2)
	s := tr.Observe(0x400, 3)
	if s.PCPath != 0x100^0x200^0x400 {
		t.Errorf("PCPath = %#x", s.PCPath)
	}
	if s.PrevPC != 0x200 {
		t.Errorf("PrevPC = %#x, want 0x200", s.PrevPC)
	}
}

func TestTrackerEvictionRestartsHistory(t *testing.T) {
	tr := NewTracker(2) // tiny: pages conflict aggressively
	tr.Observe(1, 0*mem.LinesPerPage+4)
	tr.Observe(1, 1*mem.LinesPerPage+9)
	tr.Observe(1, 2*mem.LinesPerPage+9) // evicts page 0 (same slot)
	s := tr.Observe(1, 0*mem.LinesPerPage+6)
	if s.Delta != 0 {
		t.Errorf("delta after eviction = %d, want 0 (history restarted)", s.Delta)
	}
}

func TestTrackerBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewTracker(100)
}

func TestTrackerDeltaBoundedProperty(t *testing.T) {
	tr := NewTracker(1024)
	f := func(pc, line uint64) bool {
		s := tr.Observe(pc, line)
		return s.Delta > -mem.LinesPerPage && s.Delta < mem.LinesPerPage &&
			s.Offset >= 0 && s.Offset < mem.LinesPerPage
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
