package core

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"pythia/internal/prefetch"
)

// This file proves the resolved-signature fast path is a pure optimization:
// refStore below is a line-for-line copy of the pre-ResolvedSig QVStore
// (per-plane tables, per-action hashing), and every Q-value, action choice
// and update it produces must match the flat-table implementation
// BIT-identically. The agent-level golden fingerprints at the bottom were
// captured from the seed implementation before the rewrite.

type refPlane struct {
	shift uint64
	table []float64
}

type refVault struct{ planes []refPlane }

// refStore is the straightforward reference Q-value store: one table per
// plane, the row hash recomputed for every access.
type refStore struct {
	vaults     []refVault
	featureDim int
	numActions int
	numPlanes  int
	quantStep  float64
}

func newRefStore(features []Feature, featureDim, numActions, numPlanes int, initQ float64, seed uint64) *refStore {
	s := &refStore{featureDim: featureDim, numActions: numActions, numPlanes: numPlanes}
	perPlane := initQ / float64(numPlanes)
	for vi := range features {
		var v refVault
		for p := 0; p < numPlanes; p++ {
			pl := refPlane{
				shift: qvMix(seed + uint64(vi)*1000003 + uint64(p)*7919),
				table: make([]float64, featureDim*numActions),
			}
			for i := range pl.table {
				pl.table[i] = perPlane
			}
			v.planes = append(v.planes, pl)
		}
		s.vaults = append(s.vaults, v)
	}
	return s
}

func (s *refStore) index(pl *refPlane, featVal uint64) int {
	return int(qvMix(featVal+pl.shift) & uint64(s.featureDim-1))
}

func (s *refStore) vaultQ(i int, featVal uint64, action int) float64 {
	v := &s.vaults[i]
	var q float64
	for p := range v.planes {
		pl := &v.planes[p]
		q += pl.table[s.index(pl, featVal)*s.numActions+action]
	}
	return q
}

func (s *refStore) q(sig StateSig, action int) float64 {
	best := s.vaultQ(0, sig[0], action)
	for i := 1; i < len(s.vaults); i++ {
		if q := s.vaultQ(i, sig[i], action); q > best {
			best = q
		}
	}
	return best
}

func (s *refStore) argmaxQ(sig StateSig) (action int, q float64) {
	action, q = 0, s.q(sig, 0)
	for a := 1; a < s.numActions; a++ {
		if qa := s.q(sig, a); qa > q {
			action, q = a, qa
		}
	}
	return action, q
}

func (s *refStore) quantize(x float64) float64 {
	if s.quantStep <= 0 {
		return x
	}
	n := x / s.quantStep
	if n >= 0 {
		return float64(int64(n+0.5)) * s.quantStep
	}
	return float64(int64(n-0.5)) * s.quantStep
}

func (s *refStore) update(sig1 StateSig, a1 int, reward float64, sig2 StateSig, a2 int, alpha, gamma float64) {
	target := reward + gamma*s.q(sig2, a2)
	for i := range s.vaults {
		v := &s.vaults[i]
		qOld := s.vaultQ(i, sig1[i], a1)
		adj := alpha * (target - qOld) / float64(s.numPlanes)
		for p := range v.planes {
			pl := &v.planes[p]
			idx := s.index(pl, sig1[i])*s.numActions + a1
			pl.table[idx] = s.quantize(pl.table[idx] + adj)
		}
	}
}

// tablesEqual compares every stored partial Q-value of the two layouts
// bit-for-bit.
func tablesEqual(t *testing.T, ref *refStore, fast *QVStore) {
	t.Helper()
	for vi := range ref.vaults {
		for p := range ref.vaults[vi].planes {
			table := ref.vaults[vi].planes[p].table
			flat := fast.vaults[vi].data[p*fast.planeSize : (p+1)*fast.planeSize]
			for i := range table {
				if math.Float64bits(table[i]) != math.Float64bits(flat[i]) {
					t.Fatalf("vault %d plane %d entry %d: ref %v fast %v", vi, p, i, table[i], flat[i])
				}
			}
		}
	}
}

// TestResolvedMatchesReference drives the reference and the fast store
// through identical random Q/ArgmaxQ/Update streams across several seeds
// (full precision and fixed point) and demands bit-identical Q-values,
// action choices and table contents throughout.
func TestResolvedMatchesReference(t *testing.T) {
	features := []Feature{FeaturePCDelta, FeatureLast4Deltas, {CFPCPath, DFOffset}}
	for _, seed := range []uint64{1, 2, 42, 1234} {
		for _, quant := range []float64{0, 1.0 / 256} {
			const dim, actions, planes = 64, 16, 3
			initQ := 1 / (1 - 0.556)
			ref := newRefStore(features, dim, actions, planes, initQ, seed)
			ref.quantStep = quant
			fast := NewQVStore(features, dim, actions, planes, initQ, seed)
			fast.SetQuantization(quant)

			rng := rand.New(rand.NewSource(int64(seed)))
			rsig := fast.NewResolvedSig()
			prev := StateSig{rng.Uint64(), rng.Uint64(), rng.Uint64()}
			prevA := 0
			for step := 0; step < 4000; step++ {
				st := State{
					PC:     uint64(rng.Intn(64) * 4),
					Delta:  rng.Intn(17) - 8,
					Offset: rng.Intn(64),
					PCPath: rng.Uint64() & 0xffff,
				}
				sig := fast.Signature(&st)
				fast.ResolveState(&st, &rsig)
				for i, v := range rsig.Vals() {
					if v != sig[i] {
						t.Fatalf("ResolveState vals %v != Signature %v", rsig.Vals(), sig)
					}
				}

				a := rng.Intn(actions)
				if rq, fq := ref.q(sig, a), fast.QResolved(&rsig, a); math.Float64bits(rq) != math.Float64bits(fq) {
					t.Fatalf("seed %d step %d: Q mismatch ref %v fast %v", seed, step, rq, fq)
				}
				ra, rv := ref.argmaxQ(sig)
				fa, fv := fast.ArgmaxQResolved(&rsig)
				if ra != fa || math.Float64bits(rv) != math.Float64bits(fv) {
					t.Fatalf("seed %d step %d: argmax mismatch ref (%d,%v) fast (%d,%v)", seed, step, ra, rv, fa, fv)
				}

				reward := float64(rng.Intn(35) - 14)
				ref.update(sig, a, reward, prev, prevA, 0.1, 0.556)
				// Exercise both fast update entry points.
				if step%2 == 0 {
					fast.Update(sig, a, reward, prev, prevA, 0.1, 0.556)
				} else {
					var rs2 ResolvedSig = fast.NewResolvedSig()
					fast.ResolveSig(prev, &rs2)
					fast.UpdateResolved(&rsig, a, reward, &rs2, prevA, 0.1, 0.556)
				}
				prev, prevA = sig, a
			}
			tablesEqual(t, ref, fast)
		}
	}
}

// goldenFingerprint drives a full agent over a fixed mixed access stream
// (strided, random and page-end phases) and fingerprints its decisions and
// final Q-tables.
type goldenFingerprint struct {
	qUpdates, taken, np, oop, explored, at, al int64
	acHash                                     int64
	qHash                                      uint64
}

func fingerprintAgent(t *testing.T, cfg Config) goldenFingerprint {
	t.Helper()
	p := MustNew(cfg, fixedBW(0.3))
	x := uint64(99)
	line := uint64(1 << 22)
	for i := 0; i < 40000; i++ {
		switch (i / 500) % 3 {
		case 0:
			line++
		case 1:
			x = x*6364136223846793005 + 1442695040888963407
			line = x >> 30
		case 2:
			line += 64
		}
		pc := 0x400 + uint64(i%7)*4
		for _, c := range p.Train(prefetch.Access{PC: pc, Line: line}) {
			if i%3 != 0 {
				p.Fill(c)
			}
		}
	}
	st := p.Stats()
	h := fnv.New64a()
	if err := p.SnapshotPolicy(h); err != nil {
		t.Fatal(err)
	}
	var ac int64
	for i, c := range st.ActionCounts {
		ac += int64(i+1) * c
	}
	return goldenFingerprint{
		qUpdates: st.QUpdates, taken: st.PrefetchTaken, np: st.NoPrefetch,
		oop: st.OutOfPage, explored: st.Explored, at: st.RewardAT, al: st.RewardAL,
		acHash: ac, qHash: h.Sum64(),
	}
}

// TestAgentMatchesSeedGolden pins whole-agent behavior — Q-updates, action
// selections and the final Q-table bytes — to fingerprints captured from
// the seed (pre-ResolvedSig) implementation on linux/amd64. A mismatch
// means the fast path changed observable behavior, not just speed.
func TestAgentMatchesSeedGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want goldenFingerprint
	}{
		{"basic", BasicConfig(), goldenFingerprint{39744, 15965, 22558, 1477, 389, 8090, 4040, 204325, 0x61ba6926debea5ed}},
		{"strict", StrictConfig(), goldenFingerprint{39744, 15308, 23229, 1463, 389, 8089, 4040, 202469, 0xb3e12e388a221c9a}},
		{"fixedpoint", func() Config { c := BasicConfig(); c.FixedPoint = true; return c }(),
			goldenFingerprint{39744, 15963, 22560, 1477, 389, 8090, 4040, 204320, 0x36ed9d00771ce008}},
		{"planes1", func() Config { c := BasicConfig(); c.PlanesPerVault = 1; c.Seed = 7; return c }(),
			goldenFingerprint{39744, 16218, 22348, 1434, 392, 8115, 4074, 204089, 0xdf312a31853de559}},
	} {
		if got := fingerprintAgent(t, tc.cfg); got != tc.want {
			t.Errorf("%s: fingerprint diverged from seed implementation:\n got %+v\nwant %+v", tc.name, got, tc.want)
		}
	}
}

// TestEQResolvedRoundTrip checks that resolved offsets survive the queue:
// entries inserted with InsertResolved must come back from HeadResolved and
// eviction with the exact offsets they were resolved with.
func TestEQResolvedRoundTrip(t *testing.T) {
	qv := testStore()
	q := NewEQ(2)
	rs := qv.NewResolvedSig()

	st1 := State{PC: 0x40, Delta: 1}
	qv.ResolveState(&st1, &rs)
	want1 := append([]int32(nil), rs.offs...)
	q.InsertResolved(&rs, 3, 100, true, 0, false)

	st2 := State{PC: 0x44, Delta: 2}
	qv.ResolveState(&st2, &rs) // reuse the buffer: the queue must have copied
	q.InsertResolved(&rs, 4, 101, true, 0, false)

	head, a, ok := q.HeadResolved()
	if !ok || a != 3 {
		t.Fatalf("HeadResolved = (%v, %d, %v)", head, a, ok)
	}
	for i, o := range head.offs {
		if o != want1[i] {
			t.Fatalf("head offsets %v, want %v", head.offs, want1)
		}
	}

	st3 := State{PC: 0x48, Delta: 3}
	qv.ResolveState(&st3, &rs)
	ev := q.InsertResolved(&rs, 5, 102, true, 0, false)
	if !ev.Valid || ev.Action != 3 || ev.rs == nil {
		t.Fatalf("eviction lost the entry: %+v", ev)
	}
	for i, o := range ev.rs.offs {
		if o != want1[i] {
			t.Fatalf("evicted offsets %v, want %v", ev.rs.offs, want1)
		}
	}
	// The evicted resolved signature must agree with a fresh resolve of the
	// same state when used for lookups.
	fresh := qv.NewResolvedSig()
	qv.ResolveState(&st1, &fresh)
	if qv.QResolved(ev.rs, 3) != qv.QResolved(&fresh, 3) {
		t.Error("evicted resolved signature reads a different Q-value")
	}
}
