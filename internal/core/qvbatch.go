package core

// Batch faces of the QVStore search, used over windows of in-flight
// demands. Demand streams are heavily repetitive — consecutive demands
// from a striding PC resolve to the same (vault, plane) rows — so a batch
// scan can reuse the plane-row loads of the previous element instead of
// re-walking the tables. Every reuse below is bit-exact, not approximate:
// a reused result is returned only when the resolved row offsets are
// identical, in which case the fresh scan would have loaded exactly the
// same table entries in the same order (qvbatch_test.go pins this against
// the one-at-a-time path).

// equalVals reports whether two raw signatures carry identical per-vault
// feature values.
func equalVals(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// SameRows reports whether two resolved signatures index exactly the same
// plane rows — the condition under which one signature's scan results are
// bitwise valid for the other.
func SameRows(a, b *ResolvedSig) bool {
	if len(a.offs) != len(b.offs) {
		return false
	}
	for i, o := range a.offs {
		if b.offs[i] != o {
			return false
		}
	}
	return true
}

// ResolveStateBatch resolves a window of states into out (len(out) must be
// at least len(sts); entries come from NewResolvedSig for reuse). A state
// whose raw feature values match the previous element's copies its row
// offsets instead of re-hashing every (vault, plane) pair, so a run of
// same-state demands costs one resolution.
func (s *QVStore) ResolveStateBatch(sts []State, out []ResolvedSig) {
	for i := range sts {
		r := &out[i]
		r.vals = r.vals[:0]
		for vi := range s.vaults {
			r.vals = append(r.vals, s.vaults[vi].feature.Value(&sts[i]))
		}
		if i > 0 && equalVals(r.vals, out[i-1].vals) {
			r.offs = append(r.offs[:0], out[i-1].offs...)
			continue
		}
		r.offs = r.offs[:0]
		for vi := range s.vaults {
			v := &s.vaults[vi]
			for p, shift := range v.shifts {
				r.offs = append(r.offs, s.rowBase(shift, p, r.vals[vi]))
			}
		}
	}
}

// ArgmaxQBatch runs the pipelined search over a window of resolved
// signatures, writing the best action and its Q-value per element
// (actions and qs must be at least len(rs) long). Adjacent elements that
// resolve to the same plane rows carry the previous result over without
// touching the tables. The batch must not interleave with updates: a
// carried-over result reflects the tables as of its first scan.
func (s *QVStore) ArgmaxQBatch(rs []ResolvedSig, actions []int, qs []float64) {
	for i := range rs {
		if i > 0 && SameRows(&rs[i], &rs[i-1]) {
			actions[i], qs[i] = actions[i-1], qs[i-1]
			continue
		}
		actions[i], qs[i] = s.ArgmaxQResolved(&rs[i])
	}
}

// ScanQ returns the Q-value of an action as computed by the most recent
// ArgmaxQResolved scan, without touching the tables. It equals
// QResolved(r, action) bitwise for any signature r that resolves to the
// same rows as the scanned one (SameRows) — the scan accumulates each
// action's value in exactly QResolved's order, and the max buffer holds
// all of them, not just the winner's. Valid only while no update has run
// since the scan; Pythia.Train uses it to fold the SARSA target's
// Q(S2, A2) lookup into the action-selection scan it just performed.
func (s *QVStore) ScanQ(action int) float64 { return s.maxbuf[action] }

// UpdateResolvedTarget applies the SARSA step toward an already-computed
// target value: UpdateResolved with the Q(S2, A2) lookup factored out, for
// callers that can supply it from a prior scan (ScanQ).
func (s *QVStore) UpdateResolvedTarget(r1 *ResolvedSig, a1 int, target, alpha float64) {
	for vi := range s.vaults {
		data := s.vaults[vi].data
		base := vi * s.numPlanes
		var qOld float64
		for p := 0; p < s.numPlanes; p++ {
			qOld += data[int(r1.offs[base+p])+a1]
		}
		adj := alpha * (target - qOld) / float64(s.numPlanes)
		for p := 0; p < s.numPlanes; p++ {
			idx := int(r1.offs[base+p]) + a1
			data[idx] = s.quantize(data[idx] + adj)
		}
	}
}
