package core

import (
	"math"
	"testing"
	"testing/quick"
)

func testStore() *QVStore {
	return NewQVStore([]Feature{FeaturePCDelta, FeatureLast4Deltas}, 128, 16, 3, 2.25, 1)
}

func sigFor(st *State) (qv *QVStore, sig StateSig) {
	qv = testStore()
	return qv, qv.Signature(st)
}

func TestQVStoreInit(t *testing.T) {
	qv, sig := sigFor(&State{PC: 1, Delta: 2})
	for a := 0; a < 16; a++ {
		if q := qv.Q(sig, a); math.Abs(q-2.25) > 1e-9 {
			t.Errorf("initial Q(action %d) = %v, want 2.25", a, q)
		}
	}
}

func TestQVStoreUpdateMovesTowardTarget(t *testing.T) {
	qv, sig := sigFor(&State{PC: 1, Delta: 2})
	before := qv.Q(sig, 3)
	// Reward much higher than current Q: Q must increase.
	qv.Update(sig, 3, 20, sig, 3, 0.1, 0.5)
	after := qv.Q(sig, 3)
	if after <= before {
		t.Errorf("Q did not increase: %v -> %v", before, after)
	}
	// Negative reward: Q must decrease.
	qv.Update(sig, 3, -20, sig, 3, 0.1, 0.5)
	if qv.Q(sig, 3) >= after {
		t.Error("Q did not decrease after negative reward")
	}
}

func TestQVStoreConvergesToFixedPoint(t *testing.T) {
	qv, sig := sigFor(&State{PC: 7, Delta: 1})
	// Repeated SARSA with constant reward r and self-successor converges to
	// r/(1-gamma).
	const r, gamma = 10.0, 0.5
	for i := 0; i < 3000; i++ {
		qv.Update(sig, 0, r, sig, 0, 0.05, gamma)
	}
	want := r / (1 - gamma)
	if got := qv.Q(sig, 0); math.Abs(got-want) > 0.5 {
		t.Errorf("fixed point %v, want %v", got, want)
	}
}

func TestQVStoreArgmax(t *testing.T) {
	qv, sig := sigFor(&State{PC: 9, Delta: 4})
	qv.Update(sig, 5, 50, sig, 5, 0.5, 0)
	a, q := qv.ArgmaxQ(sig)
	if a != 5 {
		t.Errorf("argmax = %d, want 5", a)
	}
	if q <= 2.25 {
		t.Errorf("argmax Q = %v, should exceed init", q)
	}
}

func TestQVStoreMaxComposition(t *testing.T) {
	// Eqn 3: Q(S,A) = max over vaults. Boost one vault only; the state Q
	// must follow the stronger vault.
	qv := testStore()
	st := State{PC: 11, Delta: 3}
	st.LastDeltas = [4]int{3, 3, 3, 3}
	sig := qv.Signature(&st)
	// Artificially boost vault 1 by training a state that shares feature 1
	// value but differs in feature 0.
	st2 := State{PC: 9999, Delta: 3}
	st2.LastDeltas = [4]int{3, 3, 3, 3}
	sig2 := qv.Signature(&st2)
	if sig2[1] != sig[1] {
		t.Fatal("test setup: vault-1 features should match")
	}
	for i := 0; i < 200; i++ {
		qv.Update(sig2, 7, 20, sig2, 7, 0.1, 0.5)
	}
	// Vault 1's boost must propagate through max for the first state too.
	if q := qv.Q(sig, 7); q <= 2.25 {
		t.Errorf("max composition failed: Q = %v", q)
	}
	if v0 := qv.VaultQ(0, sig[0], 7); v0 > qv.VaultQ(1, sig[1], 7) {
		t.Error("vault 0 should be weaker (only vault 1 generalizes)")
	}
}

func TestQVStorePlaneShiftsDiffer(t *testing.T) {
	qv := testStore()
	v := &qv.vaults[0]
	if len(v.shifts) != 3 {
		t.Fatalf("planes = %d", len(v.shifts))
	}
	if v.shifts[0] == v.shifts[1] || v.shifts[1] == v.shifts[2] {
		t.Error("plane shifting constants should differ")
	}
}

func TestQVStoreStorageBits(t *testing.T) {
	qv := testStore()
	// 2 vaults × 3 planes × 128 rows × 16 actions × 16 bits = 196608 bits = 24KB.
	if got := qv.StorageBits(); got != 2*3*128*16*16 {
		t.Errorf("StorageBits = %d", got)
	}
	if kb := float64(qv.StorageBits()) / 8 / 1024; kb != 24 {
		t.Errorf("QVStore = %v KB, want 24 (Table 4)", kb)
	}
}

func TestQVStoreSeparatesStates(t *testing.T) {
	qv := testStore()
	sA := State{PC: 0x100, Delta: 1}
	sB := State{PC: 0x104, Delta: 2}
	sigA, sigB := qv.Signature(&sA), qv.Signature(&sB)
	for i := 0; i < 100; i++ {
		qv.Update(sigA, 2, 20, sigA, 2, 0.2, 0.5)
		qv.Update(sigB, 2, -14, sigB, 2, 0.2, 0.5)
	}
	if qv.Q(sigA, 2) <= qv.Q(sigB, 2) {
		t.Errorf("states not separated: A=%v B=%v", qv.Q(sigA, 2), qv.Q(sigB, 2))
	}
}

func TestQVStoreFiniteProperty(t *testing.T) {
	qv := testStore()
	f := func(pc uint64, delta int8, action uint8, reward int8) bool {
		st := State{PC: pc, Delta: int(delta)}
		sig := qv.Signature(&st)
		a := int(action) % 16
		qv.Update(sig, a, float64(reward), sig, a, 0.1, 0.556)
		q := qv.Q(sig, a)
		return !math.IsNaN(q) && !math.IsInf(q, 0) && q >= -200 && q <= 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQVStoreBadConfigPanics(t *testing.T) {
	cases := []func(){
		func() { NewQVStore(nil, 128, 16, 3, 1, 1) },
		func() { NewQVStore([]Feature{FeaturePCDelta}, 100, 16, 3, 1, 1) },
		func() { NewQVStore([]Feature{FeaturePCDelta}, 128, 0, 3, 1, 1) },
		func() { NewQVStore([]Feature{FeaturePCDelta}, 128, 16, 0, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQVStoreQuantization(t *testing.T) {
	qv, sig := sigFor(&State{PC: 21, Delta: 8})
	qv.SetQuantization(1.0 / 256)
	for i := 0; i < 500; i++ {
		qv.Update(sig, 1, 10, sig, 1, 0.05, 0.5)
	}
	got := qv.Q(sig, 1)
	// Still converges near the fixed point, within quantization error.
	if math.Abs(got-20) > 1.0 {
		t.Errorf("quantized fixed point %v, want ~20", got)
	}
	// Every vault partial is a multiple of the step (within float error).
	v := qv.VaultQ(0, sig[0], 1)
	step := 1.0 / 256
	frac := v/step - math.Round(v/step)
	if math.Abs(frac) > 1e-6 {
		t.Errorf("vault Q %v not on the quantization grid", v)
	}
}

func TestFixedPointAgentStillLearns(t *testing.T) {
	c := BasicConfig()
	c.FixedPoint = true
	p := MustNew(c, nil)
	line := uint64(1 << 27)
	for i := 0; i < 10000; i++ {
		for _, cand := range p.Train(prefetchAccess(0x400, line)) {
			p.Fill(cand)
		}
		line++
	}
	st := p.Stats()
	if st.RewardAT+st.RewardAL == 0 {
		t.Error("fixed-point agent failed to learn a stream")
	}
}
