package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := MustNew(BasicConfig(), nil)
	runStream(src, 10000)
	var buf bytes.Buffer
	if err := src.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(BasicConfig(), nil)
	if err := dst.RestorePolicy(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Identical Q-values for an arbitrary state.
	st := State{PC: 0x400, Delta: 1}
	sSig := src.QVStore().Signature(&st)
	dSig := dst.QVStore().Signature(&st)
	for a := 0; a < len(src.Config().Actions); a++ {
		if src.QVStore().Q(sSig, a) != dst.QVStore().Q(dSig, a) {
			t.Fatalf("Q mismatch at action %d", a)
		}
	}
}

func TestWarmStartedAgentSkipsLearningTransient(t *testing.T) {
	trained := MustNew(BasicConfig(), nil)
	runStream(trained, 20000)
	var buf bytes.Buffer
	if err := trained.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}

	warm := MustNew(BasicConfig(), nil)
	if err := warm.RestorePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	cold := MustNew(BasicConfig(), nil)

	// On a short burst of the same pattern, the warm agent should take
	// far more accurate actions than the cold one.
	runStream(warm, 2000)
	runStream(cold, 2000)
	wa := warm.Stats()
	ca := cold.Stats()
	warmAcc := float64(wa.RewardAT + wa.RewardAL)
	coldAcc := float64(ca.RewardAT + ca.RewardAL)
	if warmAcc <= coldAcc {
		t.Errorf("warm start gave %v accurate rewards vs cold %v", warmAcc, coldAcc)
	}
}

func TestRestoreGeometryMismatch(t *testing.T) {
	src := MustNew(BasicConfig(), nil)
	var buf bytes.Buffer
	if err := src.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	c := BasicConfig()
	c.PlanesPerVault = 2
	dst := MustNew(c, nil)
	if err := dst.RestorePolicy(&buf); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("want ErrSnapshotMismatch, got %v", err)
	}
}

func TestRestoreBadInput(t *testing.T) {
	p := MustNew(BasicConfig(), nil)
	if err := p.RestorePolicy(strings.NewReader("garbage")); err == nil {
		t.Error("garbage input should fail")
	}
	if err := p.RestorePolicy(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated entries.
	var buf bytes.Buffer
	if err := p.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if err := p.RestorePolicy(bytes.NewReader(half)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}
