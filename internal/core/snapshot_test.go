package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := MustNew(BasicConfig(), nil)
	runStream(src, 10000)
	var buf bytes.Buffer
	if err := src.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(BasicConfig(), nil)
	if err := dst.RestorePolicy(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Identical Q-values for an arbitrary state.
	st := State{PC: 0x400, Delta: 1}
	sSig := src.QVStore().Signature(&st)
	dSig := dst.QVStore().Signature(&st)
	for a := 0; a < len(src.Config().Actions); a++ {
		if src.QVStore().Q(sSig, a) != dst.QVStore().Q(dSig, a) {
			t.Fatalf("Q mismatch at action %d", a)
		}
	}
}

func TestWarmStartedAgentSkipsLearningTransient(t *testing.T) {
	trained := MustNew(BasicConfig(), nil)
	runStream(trained, 20000)
	var buf bytes.Buffer
	if err := trained.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}

	warm := MustNew(BasicConfig(), nil)
	if err := warm.RestorePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	cold := MustNew(BasicConfig(), nil)

	// On a short burst of the same pattern, the warm agent should take
	// far more accurate actions than the cold one.
	runStream(warm, 2000)
	runStream(cold, 2000)
	wa := warm.Stats()
	ca := cold.Stats()
	warmAcc := float64(wa.RewardAT + wa.RewardAL)
	coldAcc := float64(ca.RewardAT + ca.RewardAL)
	if warmAcc <= coldAcc {
		t.Errorf("warm start gave %v accurate rewards vs cold %v", warmAcc, coldAcc)
	}
}

func TestRestoreGeometryMismatch(t *testing.T) {
	src := MustNew(BasicConfig(), nil)
	var buf bytes.Buffer
	if err := src.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	c := BasicConfig()
	c.PlanesPerVault = 2
	dst := MustNew(c, nil)
	if err := dst.RestorePolicy(&buf); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("want ErrSnapshotMismatch, got %v", err)
	}
}

// tinyStore builds the smallest legal QVStore (1 vault, 1 plane, 2 rows,
// 2 actions) so byte-level snapshot properties can be checked exhaustively.
func tinyStore() *QVStore {
	return NewQVStore([]Feature{FeaturePCDelta}, 2, 2, 1, 1.0, 7)
}

func snapshotBytes(t *testing.T, s *QVStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRestoreRejectsTrailingBytes(t *testing.T) {
	src := MustNew(BasicConfig(), nil)
	runStream(src, 5000)
	snap := snapshotBytes(t, src.QVStore())

	dst := MustNew(BasicConfig(), nil)
	before := snapshotBytes(t, dst.QVStore())
	for _, tail := range [][]byte{{0}, []byte("x"), snap} {
		bad := append(append([]byte(nil), snap...), tail...)
		if err := dst.RestorePolicy(bytes.NewReader(bad)); err == nil {
			t.Fatalf("snapshot with %d trailing bytes restored silently", len(tail))
		}
		// A rejected restore must not have mutated the store (atomicity).
		if !bytes.Equal(snapshotBytes(t, dst.QVStore()), before) {
			t.Fatal("failed restore left a partially-written store behind")
		}
	}
	// The unmodified snapshot still restores.
	if err := dst.RestorePolicy(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreTruncationAtEveryBoundary snapshots a minimal store and
// verifies that a stream cut at every possible byte offset is rejected —
// header, geometry varints, and every entry boundary included.
func TestRestoreTruncationAtEveryBoundary(t *testing.T) {
	s := tinyStore()
	s.Update(StateSig{42}, 1, 5, StateSig{42}, 1, 0.5, 0.5)
	snap := snapshotBytes(t, s)

	dst := tinyStore()
	for cut := 0; cut < len(snap); cut++ {
		if err := dst.Restore(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("snapshot truncated to %d/%d bytes restored silently", cut, len(snap))
		}
	}
	if err := dst.Restore(bytes.NewReader(snap)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
	if !bytes.Equal(snapshotBytes(t, dst), snap) {
		t.Fatal("restored store re-snapshots differently")
	}
}

// TestRestoreRejectsOverlongVarint: the format has one canonical
// encoding per value; an overlong geometry varint (0x81 0x00 for 1) is
// rejected even though it decodes to the right number.
func TestRestoreRejectsOverlongVarint(t *testing.T) {
	s := tinyStore()
	snap := snapshotBytes(t, s)
	// Bytes 0-5 are the magic; byte 6 is the vault count (1, one byte).
	bad := append(append([]byte(nil), snap[:6]...), 0x81, 0x00)
	bad = append(bad, snap[7:]...)
	if err := tinyStore().Restore(bytes.NewReader(bad)); err == nil {
		t.Fatal("overlong geometry varint restored silently")
	}
}

// TestRestoreGeometryMessage mutates each geometry axis in turn and checks
// the error both wraps ErrSnapshotMismatch and reports the full
// expected-vs-got shape, not just the first differing field.
func TestRestoreGeometryMessage(t *testing.T) {
	base := tinyStore() // 1 vault x 1 plane x 2 rows x 2 actions
	mutants := []*QVStore{
		NewQVStore([]Feature{FeaturePCDelta, FeatureLast4Deltas}, 2, 2, 1, 1.0, 7), // vaults
		NewQVStore([]Feature{FeaturePCDelta}, 2, 2, 2, 1.0, 7),                     // planes
		NewQVStore([]Feature{FeaturePCDelta}, 4, 2, 1, 1.0, 7),                     // rows
		NewQVStore([]Feature{FeaturePCDelta}, 2, 3, 1, 1.0, 7),                     // actions
	}
	for i, m := range mutants {
		err := base.Restore(bytes.NewReader(snapshotBytes(t, m)))
		if !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("mutant %d: want ErrSnapshotMismatch, got %v", i, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "1 x 1 x 2 x 2") {
			t.Errorf("mutant %d: error %q lacks the store's full geometry", i, msg)
		}
		if !strings.Contains(msg, "snapshot has") || !strings.Contains(msg, "store has") {
			t.Errorf("mutant %d: error %q lacks expected-vs-got phrasing", i, msg)
		}
	}
}

// FuzzSnapshotRestore holds two properties over arbitrary input bytes:
// Restore never panics, and any stream it accepts re-snapshots to exactly
// the bytes that were restored (the format has one canonical encoding).
func FuzzSnapshotRestore(f *testing.F) {
	s := tinyStore()
	s.Update(StateSig{1}, 0, 3, StateSig{2}, 1, 0.25, 0.5)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PYQV01"))
	f.Add([]byte{})
	// Overlong-varint geometry: decodes to valid values but must be
	// rejected (non-canonical encoding).
	f.Add(append(append([]byte(nil), buf.Bytes()[:6]...), 0x81, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := tinyStore()
		if err := dst.Restore(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := dst.Snapshot(&out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted %d bytes but re-snapshots to %d different bytes", len(data), out.Len())
		}
	})
}

func TestRestoreBadInput(t *testing.T) {
	p := MustNew(BasicConfig(), nil)
	if err := p.RestorePolicy(strings.NewReader("garbage")); err == nil {
		t.Error("garbage input should fail")
	}
	if err := p.RestorePolicy(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated entries.
	var buf bytes.Buffer
	if err := p.SnapshotPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	if err := p.RestorePolicy(bytes.NewReader(half)); err == nil {
		t.Error("truncated snapshot should fail")
	}
}
