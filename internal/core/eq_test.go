package core

import (
	"testing"
	"testing/quick"
)

func sig(vals ...uint64) StateSig { return StateSig(vals) }

func TestEQInsertEvictFIFO(t *testing.T) {
	q := NewEQ(3)
	for i := uint64(1); i <= 3; i++ {
		ev := q.Insert(sig(i), int(i), 100+i, true, 0, false)
		if ev.Valid {
			t.Fatalf("unexpected eviction at insert %d", i)
		}
	}
	if q.Len() != 3 || q.Cap() != 3 {
		t.Fatalf("Len/Cap = %d/%d", q.Len(), q.Cap())
	}
	ev := q.Insert(sig(4), 4, 104, true, 0, false)
	if !ev.Valid || ev.Sig[0] != 1 || ev.Action != 1 {
		t.Errorf("eviction should return the oldest entry, got %+v", ev)
	}
	// Head after eviction is the second-oldest (S_{t+1}, Algorithm 1 l.28).
	hs, ha, ok := q.Head()
	if !ok || hs[0] != 2 || ha != 2 {
		t.Errorf("Head = (%v,%d,%v), want entry 2", hs, ha, ok)
	}
}

func TestEQDemandRewards(t *testing.T) {
	q := NewEQ(8)
	q.Insert(sig(1), 1, 500, true, 0, false)
	// Unfilled: accurate but late.
	matched, filled := q.OnDemand(500, 20, 12)
	if !matched || filled {
		t.Errorf("OnDemand = (%v,%v), want (true,false)", matched, filled)
	}
	// Second demand must not double-reward.
	if m, _ := q.OnDemand(500, 20, 12); m {
		t.Error("double reward on second demand")
	}
	// Filled path: accurate and timely.
	q.Insert(sig(2), 2, 600, true, 0, false)
	if !q.OnFill(600) {
		t.Fatal("OnFill missed the entry")
	}
	matched, filled = q.OnDemand(600, 20, 12)
	if !matched || !filled {
		t.Errorf("OnDemand after fill = (%v,%v), want (true,true)", matched, filled)
	}
}

func TestEQUntrackedEntriesInvisible(t *testing.T) {
	q := NewEQ(4)
	q.Insert(sig(1), 0, 0, false, -4, true) // no-prefetch entry
	if m, _ := q.OnDemand(0, 20, 12); m {
		t.Error("untracked entry matched a demand")
	}
	if q.OnFill(0) {
		t.Error("untracked entry matched a fill")
	}
}

func TestEQEvictionCarriesImmediateReward(t *testing.T) {
	q := NewEQ(1)
	q.Insert(sig(1), 3, 0, false, -12, true) // out-of-page, R_CL
	ev := q.Insert(sig(2), 4, 700, true, 0, false)
	if !ev.Valid || !ev.HadReward || ev.Reward != -12 {
		t.Errorf("evicted entry lost its reward: %+v", ev)
	}
	// The unrewarded prefetch entry evicts without a reward (caller assigns
	// R_IN).
	ev = q.Insert(sig(3), 5, 800, true, 0, false)
	if !ev.Valid || ev.HadReward {
		t.Errorf("in-flight entry should evict unrewarded: %+v", ev)
	}
}

func TestEQRewardDuringResidencySurvivesToEviction(t *testing.T) {
	q := NewEQ(2)
	q.Insert(sig(1), 1, 900, true, 0, false)
	q.OnDemand(900, 20, 12)
	q.Insert(sig(2), 2, 901, true, 0, false)
	ev := q.Insert(sig(3), 3, 902, true, 0, false)
	if !ev.Valid || !ev.HadReward || ev.Reward != 12 {
		t.Errorf("resident reward lost at eviction: %+v", ev)
	}
}

func TestEQLineReusePointsToNewest(t *testing.T) {
	q := NewEQ(8)
	q.Insert(sig(1), 1, 42, true, 0, false)
	q.OnDemand(42, 20, 12) // reward the first
	q.Insert(sig(2), 2, 42, true, 0, false)
	// The new entry for the same line must be rewardable.
	if m, _ := q.OnDemand(42, 20, 12); !m {
		t.Error("newest entry for a reused line not found")
	}
}

func TestEQEmptyHead(t *testing.T) {
	q := NewEQ(4)
	if _, _, ok := q.Head(); ok {
		t.Error("empty queue should have no head")
	}
}

func TestEQZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewEQ(0)
}

func TestEQNeverExceedsCapacityProperty(t *testing.T) {
	q := NewEQ(16)
	f := func(lines []uint64) bool {
		for i, l := range lines {
			q.Insert(sig(uint64(i)), i%16, l, l%3 != 0, 0, l%3 == 0)
			if q.Len() > q.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
