package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Policy snapshots serialize a trained QVStore so an agent can be
// warm-started — the software analogue of retaining the silicon's learned
// tables across a context switch or powering up with a profiled policy.
//
// Format:
//
//	magic    [6]byte "PYQV01"
//	vaults   uvarint
//	planes   uvarint
//	dim      uvarint
//	actions  uvarint
//	entries  float64 (little-endian bits), vault-major then plane, row, action

var snapshotMagic = [6]byte{'P', 'Y', 'Q', 'V', '0', '1'}

// ErrSnapshotMismatch is returned when restoring a snapshot whose geometry
// does not match the store.
var ErrSnapshotMismatch = errors.New("core: snapshot geometry mismatch")

// Snapshot writes the store's Q-values to w.
func (s *QVStore) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{
		uint64(len(s.vaults)), uint64(s.numPlanes),
		uint64(s.featureDim), uint64(s.numActions),
	} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	var le [8]byte
	for vi := range s.vaults {
		// The flat vault table is already in the format's plane, row,
		// action order.
		for _, q := range s.vaults[vi].data {
			binary.LittleEndian.PutUint64(le[:], math.Float64bits(q))
			if _, err := bw.Write(le[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore loads Q-values from a snapshot written by Snapshot into a store
// with identical geometry. It is strict and atomic: the header geometry
// must match the store exactly (a mismatch reports the full expected and
// found shapes, wrapped in ErrSnapshotMismatch), the stream must end at
// the last entry (trailing bytes — a concatenated or corrupted snapshot —
// are rejected rather than silently ignored), and the store is only
// mutated after the whole stream has validated, so a failed Restore never
// leaves a half-written policy behind.
func (s *QVStore) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [6]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("core: bad snapshot magic %q", magic[:])
	}
	// Decode the full geometry before comparing, so a mismatch can report
	// the complete expected-vs-got shape rather than the first bad field.
	var got [4]uint64
	for i := range got {
		v, err := readCanonicalUvarint(br)
		if err != nil {
			return fmt.Errorf("core: snapshot geometry: %w", err)
		}
		got[i] = v
	}
	want := [4]uint64{
		uint64(len(s.vaults)), uint64(s.numPlanes),
		uint64(s.featureDim), uint64(s.numActions),
	}
	if got != want {
		return fmt.Errorf("%w: snapshot has %d vaults x %d planes x %d rows x %d actions, store has %d x %d x %d x %d",
			ErrSnapshotMismatch,
			got[0], got[1], got[2], got[3],
			want[0], want[1], want[2], want[3])
	}
	scratch := make([]float64, len(s.vaults)*s.numPlanes*s.featureDim*s.numActions)
	var le [8]byte
	for i := range scratch {
		if _, err := io.ReadFull(br, le[:]); err != nil {
			return fmt.Errorf("core: snapshot entries: %w", err)
		}
		scratch[i] = math.Float64frombits(binary.LittleEndian.Uint64(le[:]))
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err == nil {
			return fmt.Errorf("core: snapshot has trailing bytes after the last entry (concatenated or corrupted stream)")
		}
		return fmt.Errorf("core: snapshot trailer: %w", err)
	}
	// Fully validated: commit into the vault tables.
	off := 0
	for vi := range s.vaults {
		table := s.vaults[vi].data
		copy(table, scratch[off:off+len(table)])
		off += len(table)
	}
	return nil
}

// readCanonicalUvarint decodes a uvarint and rejects non-canonical
// (overlong) encodings, so the snapshot format has exactly one byte
// representation per value: any stream Restore accepts re-snapshots to
// the identical bytes (the property FuzzSnapshotRestore holds).
func readCanonicalUvarint(br io.ByteReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if i == binary.MaxVarintLen64-1 && b > 1 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
		if b < 0x80 {
			if b == 0 && i > 0 {
				// A trailing zero group is the overlong form (e.g. 0x81
				// 0x00 for 1); Snapshot never writes it.
				return 0, fmt.Errorf("non-canonical uvarint encoding")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// SnapshotPolicy serializes the agent's learned Q-values.
func (p *Pythia) SnapshotPolicy(w io.Writer) error { return p.qv.Snapshot(w) }

// RestorePolicy warm-starts the agent from a snapshot taken from an agent
// with an identical configuration.
func (p *Pythia) RestorePolicy(r io.Reader) error { return p.qv.Restore(r) }
