package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Policy snapshots serialize a trained QVStore so an agent can be
// warm-started — the software analogue of retaining the silicon's learned
// tables across a context switch or powering up with a profiled policy.
//
// Format:
//
//	magic    [6]byte "PYQV01"
//	vaults   uvarint
//	planes   uvarint
//	dim      uvarint
//	actions  uvarint
//	entries  float64 (little-endian bits), vault-major then plane, row, action

var snapshotMagic = [6]byte{'P', 'Y', 'Q', 'V', '0', '1'}

// ErrSnapshotMismatch is returned when restoring a snapshot whose geometry
// does not match the store.
var ErrSnapshotMismatch = errors.New("core: snapshot geometry mismatch")

// Snapshot writes the store's Q-values to w.
func (s *QVStore) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []uint64{
		uint64(len(s.vaults)), uint64(s.numPlanes),
		uint64(s.featureDim), uint64(s.numActions),
	} {
		n := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	var le [8]byte
	for vi := range s.vaults {
		// The flat vault table is already in the format's plane, row,
		// action order.
		for _, q := range s.vaults[vi].data {
			binary.LittleEndian.PutUint64(le[:], math.Float64bits(q))
			if _, err := bw.Write(le[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore loads Q-values from a snapshot written by Snapshot into a store
// with identical geometry.
func (s *QVStore) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var got [6]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	if got != snapshotMagic {
		return fmt.Errorf("core: bad snapshot magic %q", got[:])
	}
	want := []uint64{
		uint64(len(s.vaults)), uint64(s.numPlanes),
		uint64(s.featureDim), uint64(s.numActions),
	}
	for i, w := range want {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("core: snapshot geometry: %w", err)
		}
		if v != w {
			return fmt.Errorf("%w: field %d is %d, store has %d", ErrSnapshotMismatch, i, v, w)
		}
	}
	var le [8]byte
	for vi := range s.vaults {
		table := s.vaults[vi].data
		for i := range table {
			if _, err := io.ReadFull(br, le[:]); err != nil {
				return fmt.Errorf("core: snapshot entries: %w", err)
			}
			table[i] = math.Float64frombits(binary.LittleEndian.Uint64(le[:]))
		}
	}
	return nil
}

// SnapshotPolicy serializes the agent's learned Q-values.
func (p *Pythia) SnapshotPolicy(w io.Writer) error { return p.qv.Snapshot(w) }

// RestorePolicy warm-starts the agent from a snapshot taken from an agent
// with an identical configuration.
func (p *Pythia) RestorePolicy(r io.Reader) error { return p.qv.Restore(r) }
