package core

import (
	"math"
	"math/rand"
	"testing"
)

// randState returns a plausible tracker state; adjacent duplicates are
// common in real demand streams, so the batch tests inject them.
func randState(rng *rand.Rand) State {
	return State{
		PC:     uint64(rng.Intn(64) * 4),
		Delta:  rng.Intn(17) - 8,
		Offset: rng.Intn(64),
		PCPath: rng.Uint64() & 0xffff,
	}
}

// churn applies a stream of random updates so tables hold non-trivial
// values.
func churn(qv *QVStore, rng *rand.Rand, n int) {
	prev := qv.Signature(&State{PC: 4})
	prevA := 0
	for i := 0; i < n; i++ {
		st := randState(rng)
		sig := qv.Signature(&st)
		a := rng.Intn(16)
		qv.Update(sig, a, float64(rng.Intn(35)-14), prev, prevA, 0.1, 0.556)
		prev, prevA = sig, a
	}
}

func TestResolveStateBatchMatchesSingle(t *testing.T) {
	qv := testStore()
	rng := rand.New(rand.NewSource(1))
	sts := make([]State, 64)
	for i := range sts {
		if i > 0 && rng.Intn(3) == 0 {
			sts[i] = sts[i-1] // adjacent duplicate: exercises the offs reuse
		} else {
			sts[i] = randState(rng)
		}
	}
	out := make([]ResolvedSig, len(sts))
	for i := range out {
		out[i] = qv.NewResolvedSig()
	}
	qv.ResolveStateBatch(sts, out)

	single := qv.NewResolvedSig()
	for i := range sts {
		qv.ResolveState(&sts[i], &single)
		if !equalVals(out[i].vals, single.vals) {
			t.Fatalf("state %d: batch vals %v, single %v", i, out[i].vals, single.vals)
		}
		if !SameRows(&out[i], &single) {
			t.Fatalf("state %d: batch offs %v, single %v", i, out[i].offs, single.offs)
		}
	}
}

func TestArgmaxQBatchMatchesSingle(t *testing.T) {
	qv := testStore()
	rng := rand.New(rand.NewSource(2))
	churn(qv, rng, 2000)

	sts := make([]State, 48)
	for i := range sts {
		if i > 0 && rng.Intn(3) == 0 {
			sts[i] = sts[i-1]
		} else {
			sts[i] = randState(rng)
		}
	}
	rs := make([]ResolvedSig, len(sts))
	for i := range rs {
		rs[i] = qv.NewResolvedSig()
	}
	qv.ResolveStateBatch(sts, rs)

	actions := make([]int, len(rs))
	qs := make([]float64, len(rs))
	qv.ArgmaxQBatch(rs, actions, qs)
	for i := range rs {
		wantA, wantQ := qv.ArgmaxQResolved(&rs[i])
		if actions[i] != wantA || math.Float64bits(qs[i]) != math.Float64bits(wantQ) {
			t.Fatalf("element %d: batch (%d, %v), single (%d, %v)", i, actions[i], qs[i], wantA, wantQ)
		}
	}
}

// TestScanQMatchesQResolved pins the invariant Pythia.Train leans on: the
// scan buffer left behind by ArgmaxQResolved holds every action's
// Q-value, bitwise equal to a fresh QResolved on the same rows.
func TestScanQMatchesQResolved(t *testing.T) {
	for _, quant := range []float64{0, 1.0 / 256} {
		qv := testStore()
		qv.SetQuantization(quant)
		rng := rand.New(rand.NewSource(3))
		churn(qv, rng, 2000)
		rs := qv.NewResolvedSig()
		for i := 0; i < 200; i++ {
			st := randState(rng)
			qv.ResolveState(&st, &rs)
			qv.ArgmaxQResolved(&rs)
			for a := 0; a < 16; a++ {
				if got, want := qv.ScanQ(a), qv.QResolved(&rs, a); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("state %d action %d: ScanQ %v, QResolved %v", i, a, got, want)
				}
			}
		}
	}
}

// TestUpdateResolvedTargetMatchesUpdateResolved drives two stores through
// the same update stream — one through UpdateResolved, one through an
// explicit target plus UpdateResolvedTarget — and requires bitwise equal
// tables throughout.
func TestUpdateResolvedTargetMatchesUpdateResolved(t *testing.T) {
	a, b := testStore(), testStore()
	rng := rand.New(rand.NewSource(4))
	ra1, ra2 := a.NewResolvedSig(), a.NewResolvedSig()
	rb1, rb2 := b.NewResolvedSig(), b.NewResolvedSig()
	prev := randState(rng)
	for i := 0; i < 1000; i++ {
		st := randState(rng)
		act, nextAct := rng.Intn(16), rng.Intn(16)
		reward := float64(rng.Intn(35) - 14)

		a.ResolveState(&st, &ra1)
		a.ResolveState(&prev, &ra2)
		a.UpdateResolved(&ra1, act, reward, &ra2, nextAct, 0.1, 0.556)

		b.ResolveState(&st, &rb1)
		b.ResolveState(&prev, &rb2)
		b.UpdateResolvedTarget(&rb1, act, reward+0.556*b.QResolved(&rb2, nextAct), 0.1)

		prev = st
	}
	for vi := range a.vaults {
		for j, v := range a.vaults[vi].data {
			if math.Float64bits(v) != math.Float64bits(b.vaults[vi].data[j]) {
				t.Fatalf("vault %d entry %d: UpdateResolved %v, UpdateResolvedTarget %v",
					vi, j, v, b.vaults[vi].data[j])
			}
		}
	}
}
