// Designspace: run the paper's automated design-space exploration methods
// (§4.3) at miniature scale — feature selection, action-list pruning, and
// the reward/hyperparameter grid search — using the harness APIs.
//
//	go run ./examples/designspace
package main

import (
	"fmt"

	"pythia/internal/harness"
)

func main() {
	sc := harness.ScaleQuick
	sc.WorkloadsPerSuite = 2

	fmt.Println("1) Feature selection (§4.3.1): single features + selected pairs,")
	fmt.Println("   sorted by speedup (bottom = worst, top = winner):")
	fmt.Println(harness.Fig19FeatureSweep(sc).Render())

	fmt.Println("2) Action-list pruning (§4.3.2): impact of dropping each action:")
	fmt.Println(harness.ExtActionPruning(sc).Render())

	fmt.Println("3) Hyperparameter grid search (§4.3.3): top configurations:")
	fmt.Println(harness.ExtAutoTune(sc).Render())
}
