// Designspace: run the paper's automated design-space exploration methods
// (§4.3) at miniature scale — feature selection, action-list pruning, and
// the reward/hyperparameter grid search — using the harness APIs.
//
//	go run ./examples/designspace
package main

import (
	"context"
	"fmt"
	"os"

	"pythia/internal/harness"
	"pythia/internal/stats"
)

func main() {
	ctx := context.Background()
	sc := harness.ScaleQuick
	sc.WorkloadsPerSuite = 2

	show := func(tb *stats.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(tb.Render())
	}

	fmt.Println("1) Feature selection (§4.3.1): single features + selected pairs,")
	fmt.Println("   sorted by speedup (bottom = worst, top = winner):")
	show(harness.Fig19FeatureSweep(ctx, sc))

	fmt.Println("2) Action-list pruning (§4.3.2): impact of dropping each action:")
	show(harness.ExtActionPruning(ctx, sc))

	fmt.Println("3) Hyperparameter grid search (§4.3.3): top configurations:")
	show(harness.ExtAutoTune(ctx, sc))
}
