// Longhorizon: a paper-scale single-core run in bounded memory. The
// streaming trace pipeline (internal/stream) delivers an 8M-record trace
// through a ring of recycled record chunks, so a ≥50M-instruction
// simulation — the horizon the paper trains over, and 50x this library's
// previous ceiling — runs with a few MB of resident trace data instead of
// ~200 MB. At this horizon Pythia trains with the paper's actual Table 2
// hyperparameters (α=0.0065, ε=0.002); DESIGN.md "Horizon scaling"
// explains why shorter runs need inflated values.
//
//	go run ./examples/longhorizon
//	go run ./examples/longhorizon -materialize   # the old path, for the memory contrast
//	go run ./examples/longhorizon -sim 10000000  # quicker demo
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/cpu"
	"pythia/internal/stream"
	"pythia/internal/trace"
)

func main() {
	var (
		workload    = flag.String("workload", "459.GemsFDTD-100B", "trace name")
		sim         = flag.Int64("sim", 50_000_000, "measured instructions")
		warmup      = flag.Int64("warmup", 10_000_000, "warmup instructions")
		traceLen    = flag.Int("tracelen", 8_000_000, "trace length in records")
		materialize = flag.Bool("materialize", false, "build the whole trace in memory (the pre-streaming architecture)")
	)
	flag.Parse()

	w, ok := trace.ByName(*workload)
	if !ok {
		panic("workload not found: " + *workload)
	}
	cfg := core.PaperHorizonConfig()
	fmt.Printf("workload: %s, %d records, warmup %dM + measure %dM instructions\n",
		w.Name, *traceLen, *warmup/1e6, *sim/1e6)
	fmt.Printf("agent: %s (paper Table 2 hyperparameters: alpha=%.4f epsilon=%.4f)\n\n",
		cfg.Name, cfg.Alpha, cfg.Epsilon)

	var reader trace.Reader
	start := time.Now()
	if *materialize {
		fmt.Println("delivery: materialized []Record (pre-streaming architecture)")
		reader = trace.NewSliceReader(w.Generate(*traceLen).Records)
	} else {
		fmt.Println("delivery: streamed through the chunk pipeline (generator replay)")
		src := &stream.GenSource{W: w, N: *traceLen}
		r, err := src.Open()
		if err != nil {
			panic(err)
		}
		reader = r
	}

	hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
	if err != nil {
		panic(err)
	}
	agent := core.MustNew(cfg, hier)
	hier.AttachPrefetcher(0, agent)

	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Core:               cpu.DefaultCoreConfig(),
		WarmupInstructions: *warmup,
		SimInstructions:    *sim,
	}, hier, []trace.Reader{reader})
	if err != nil {
		panic(err)
	}
	defer sys.Close()
	// Ctrl-C aborts the long run at the next chunk boundary instead of
	// leaving a killed process.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if err := sys.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "run aborted:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	c := sys.Cores[0]
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("\nIPC: %.3f over %dM instructions (%d trace replays)\n",
		c.IPC(), c.MeasuredInstructions()/1e6, c.Replays())
	st := c.Stats()
	fmt.Printf("LLC load misses: %d, prefetches issued: %d, accuracy %.1f%%\n",
		st.LLCLoadMisses, st.PfIssued, 100*st.Accuracy())
	fmt.Printf("wall time: %v (%.1fM instr/s)\n", wall.Round(time.Millisecond),
		float64(c.MeasuredInstructions()+*warmup)/wall.Seconds()/1e6)
	fmt.Printf("peak heap: %.1f MB (trace alone would be %.1f MB materialized)\n",
		float64(ms.HeapSys)/(1<<20), float64(*traceLen)*24/(1<<20))

	ast := agent.Stats()
	fmt.Println("\nlearned policy (action -> times selected):")
	for i, cnt := range ast.ActionCounts {
		if cnt > ast.Demands/20 {
			fmt.Printf("  offset %+d: %d\n", agent.Config().Actions[i], cnt)
		}
	}
}
