// Multicore: run a four-core heterogeneous mix (paper Fig. 10 setting) and
// show per-core IPC plus how Pythia's bandwidth awareness shows up in the
// DRAM usage buckets.
//
//	go run ./examples/multicore
package main

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/harness"
	"pythia/internal/trace"
)

func main() {
	names := []string{"429.mcf-100B", "410.bwaves-100B", "CC-100B", "482.sphinx3-100B"}
	var ws []trace.Workload
	for _, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			panic("missing workload " + n)
		}
		ws = append(ws, w)
	}
	mix := trace.Mix{Name: "example-mix", Workloads: ws}
	cfg := cache.DefaultConfig(4)
	sc := harness.ScaleQuick

	ctx := context.Background()
	base, err := harness.RunCached(ctx, harness.RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: harness.Baseline()})
	if err != nil {
		panic(err)
	}
	fmt.Println("four-core heterogeneous mix (2 DDR4-2400 channels shared):")
	for i, w := range ws {
		fmt.Printf("  core %d: %-18s baseline IPC %.3f\n", i, w.Name, base.IPC[i])
	}

	for _, pf := range []harness.PF{harness.BingoPF(), harness.BasicPythiaPF()} {
		run, err := harness.RunCached(ctx, harness.RunSpec{Mix: mix, CacheCfg: cfg, Scale: sc, PF: pf})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nwith %s: speedup %.3f\n", pf.Name, harness.Speedup(run, base))
		for i := range ws {
			fmt.Printf("  core %d: IPC %.3f (%+.1f%%)\n", i, run.IPC[i], 100*(run.IPC[i]/base.IPC[i]-1))
		}
		fmt.Printf("  DRAM usage buckets (<25/25-50/50-75/>=75): %.0f%% %.0f%% %.0f%% %.0f%%\n",
			100*run.Buckets[0], 100*run.Buckets[1], 100*run.Buckets[2], 100*run.Buckets[3])
	}
}
