// Customization: demonstrate Pythia's "configuration register" tuning
// (paper §6.6) — the same hardware, reprogrammed for graph workloads by
// changing only the reward level values (strict Pythia, Fig. 15) and for a
// target workload by swapping the feature vector (Fig. 16).
//
//	go run ./examples/customization
package main

import (
	"context"
	"fmt"
	"os"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/harness"
	"pythia/internal/trace"
)

func speedup(w trace.Workload, cfg core.Config) float64 {
	mix := trace.Mix{Name: w.Name, Workloads: []trace.Workload{w}}
	sp, err := harness.SpeedupOn(context.Background(), mix, cache.DefaultConfig(1), harness.ScaleQuick, harness.PythiaPF(cfg))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return sp
}

func main() {
	basic := core.BasicConfig()
	strict := core.StrictConfig()

	fmt.Println("1) Reward customization on Ligra graph workloads (paper §6.6.1)")
	fmt.Printf("   strict rewards: R_IN %g/%g -> %g/%g, R_NP %g/%g -> %g/%g\n\n",
		basic.Rewards.INHigh, basic.Rewards.INLow, strict.Rewards.INHigh, strict.Rewards.INLow,
		basic.Rewards.NPHigh, basic.Rewards.NPLow, strict.Rewards.NPHigh, strict.Rewards.NPLow)
	fmt.Printf("   %-16s %8s %8s %8s\n", "workload", "basic", "strict", "delta")
	for _, name := range []string{"CC-100B", "PageRank-100B", "BFS-100B", "BellmanFord-100B"} {
		w, ok := trace.ByName(name)
		if !ok {
			continue
		}
		b := speedup(w, basic)
		s := speedup(w, strict)
		fmt.Printf("   %-16s %8.3f %8.3f %+7.1f%%\n", w.Base, b, s, 100*(s/b-1))
	}

	fmt.Println("\n2) Feature customization (paper §6.6.2)")
	alt := basic.WithFeatures("pythia-pcoffset",
		core.Feature{CF: core.CFPC, DF: core.DFOffset},
		core.FeaturePCDelta)
	fmt.Println("   swapping the state vector to {PC+Offset, PC+Delta}:")
	for _, name := range []string{"482.sphinx3-100B", "459.GemsFDTD-100B"} {
		w, ok := trace.ByName(name)
		if !ok {
			continue
		}
		b := speedup(w, basic)
		a := speedup(w, alt)
		fmt.Printf("   %-20s basic %.3f, alt-features %.3f\n", w.Base, b, a)
	}

	fmt.Println("\nNo hardware changed between any of these runs — only Config fields,")
	fmt.Println("the software model of the paper's configuration registers.")
}
