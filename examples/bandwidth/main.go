// Bandwidth: reproduce the paper's central claim (Fig. 8b) on a small
// scale — as DRAM bandwidth shrinks, system-unaware prefetchers collapse
// while Pythia's bandwidth-aware rewards keep it ahead.
//
//	go run ./examples/bandwidth
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	"pythia/internal/cache"
	"pythia/internal/harness"
	"pythia/internal/trace"
)

func main() {
	sc := harness.ScaleQuick
	workloads := []string{"410.bwaves-100B", "482.sphinx3-100B", "CC-100B", "429.mcf-100B"}
	pfs := []harness.PF{harness.SPPPF(), harness.BingoPF(), harness.MLOPPF(), harness.BasicPythiaPF()}

	fmt.Println("geomean speedup over no-prefetching, varying DRAM bandwidth")
	fmt.Printf("%-8s", "MTPS")
	for _, pf := range pfs {
		fmt.Printf("  %8s", pf.Name)
	}
	fmt.Println()

	for _, mtps := range []int{150, 600, 2400, 9600} {
		cfg := cache.DefaultConfig(1)
		cfg.DRAM = cfg.DRAM.WithMTPS(mtps)
		fmt.Printf("%-8d", mtps)
		for _, pf := range pfs {
			prod, n := 1.0, 0
			for _, name := range workloads {
				w, ok := trace.ByName(name)
				if !ok {
					continue
				}
				mix := trace.Mix{Name: w.Name, Workloads: []trace.Workload{w}}
				sp, err := harness.SpeedupOn(context.Background(), mix, cfg, sc, pf)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				prod *= sp
				n++
			}
			geo := 1.0
			if n > 0 {
				geo = math.Pow(prod, 1.0/float64(n))
			}
			fmt.Printf("  %8.3f", geo)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Fig. 8b): every prefetcher degrades as MTPS drops,")
	fmt.Println("but Pythia degrades least; at 150 MTPS it leads MLOP/Bingo by double digits.")
}
