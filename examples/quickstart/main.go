// Quickstart: run Pythia against the no-prefetching baseline on one
// workload and print speedup, coverage and the learned policy.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/cpu"
	"pythia/internal/trace"
)

// run simulates one single-core workload with the given prefetcher factory
// and returns IPC plus the core's memory statistics.
func run(w trace.Workload, attach func(h *cache.Hierarchy)) (float64, cache.CoreStats) {
	hier, err := cache.NewHierarchy(cache.DefaultConfig(1))
	if err != nil {
		panic(err)
	}
	if attach != nil {
		attach(hier)
	}
	t := w.Generate(400_000)
	sys, err := cpu.NewSystem(cpu.SystemConfig{
		Core:               cpu.DefaultCoreConfig(),
		WarmupInstructions: 1_000_000,
		SimInstructions:    4_000_000,
	}, hier, []trace.Reader{trace.NewSliceReader(t.Records)})
	if err != nil {
		panic(err)
	}
	if err := sys.Run(context.Background()); err != nil {
		panic(err)
	}
	return sys.Cores[0].IPC(), sys.Cores[0].Stats()
}

func main() {
	w, ok := trace.ByName("459.GemsFDTD-100B")
	if !ok {
		panic("workload not found")
	}
	fmt.Printf("workload: %s\n\n", w.Name)

	baseIPC, baseStats := run(w, nil)
	fmt.Printf("no prefetching: IPC %.3f, %d LLC load misses\n", baseIPC, baseStats.LLCLoadMisses)

	var agent *core.Pythia
	pfIPC, pfStats := run(w, func(h *cache.Hierarchy) {
		agent = core.MustNew(core.BasicConfig(), h)
		h.AttachPrefetcher(0, agent)
	})
	fmt.Printf("with Pythia:    IPC %.3f, %d LLC load misses\n\n", pfIPC, pfStats.LLCLoadMisses)

	fmt.Printf("speedup:  %.2fx\n", pfIPC/baseIPC)
	fmt.Printf("coverage: %.1f%%\n",
		100*float64(baseStats.LLCLoadMisses-pfStats.LLCLoadMisses)/float64(baseStats.LLCLoadMisses))
	fmt.Printf("accuracy: %.1f%% (%d issued, %d useful)\n\n",
		100*pfStats.Accuracy(), pfStats.PfIssued, pfStats.PfUseful)

	st := agent.Stats()
	fmt.Println("learned policy (action -> times selected):")
	for i, c := range st.ActionCounts {
		if c > st.Demands/20 {
			fmt.Printf("  offset %+d: %d\n", agent.Config().Actions[i], c)
		}
	}
	fmt.Printf("rewards: AT=%d AL=%d CL=%d IN=%d NP=%d\n",
		st.RewardAT, st.RewardAL, st.RewardCL,
		st.RewardINHigh+st.RewardINLow, st.RewardNPHigh+st.RewardNPLow)

	// The paper's case study (§6.5): the PC 0x436a81 page-leading loads are
	// followed by exactly one access 23 lines ahead; Pythia should have
	// learned a high Q-value for offset +23 under that context.
	featVal := core.FeaturePCDelta.Value(&core.State{PC: 0x436a81, Delta: 0})
	qv := agent.QVStore()
	fmt.Println("\nQ-values for context (PC=0x436a81, delta=0):")
	for i, off := range agent.Config().Actions {
		q := qv.VaultQ(0, featVal, i)
		fmt.Printf("  %+3d: %6.2f\n", off, q)
	}
}
