// Serving demo: run the experiment harness as an HTTP service with a
// persistent result store, launch an experiment over the v1 API, stream
// its progress, then show an identical repeat request being answered
// from the store with zero additional simulation — the path from batch
// reproduction to a result-serving system. The next act launches a
// heavier run and cancels it: the SSE stream ends with a terminal
// "canceled" event while the service stays healthy. The final act
// overloads a deliberately tiny service until it sheds a launch with a
// typed queue_full error (503 + Retry-After), and shows the polite
// client response: the api.Client's built-in jittered backoff, driven
// by the server's own hint, gets the request in as soon as capacity
// frees up.
//
// Every HTTP interaction goes through the typed api.Client — no
// hand-rolled request bodies, status switches, or SSE parsing.
//
//	go run ./examples/serve
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"pythia/internal/api"
	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "pythia-serve-demo")
	check(err)
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{Store: results.Open(dir)})
	check(err)
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, srv.Handler())
	client := api.NewClient("http://" + ln.Addr().String())
	fmt.Printf("pythia-serve on %s (store %s)\n\n", client.Base(), dir)

	// 1. Launch Fig. 14 at quick scale and follow the SSE progress stream.
	fmt.Println("== first request: launch {experiment: fig14, scale: quick} ==")
	job, err := client.Launch(ctx, api.LaunchRequest{Experiment: "fig14", Scale: "quick"})
	check(err)
	final := follow(ctx, client, job.ID)
	fmt.Printf("\n%s\n", final.Rendered)
	fmt.Printf("first run: cached=%v, %d simulations executed\n\n", final.Cached, final.Sims)

	// 2. Simulate a fresh process: drop every in-memory cache. The store
	// on disk is all that remains.
	harness.ResetCaches()

	fmt.Println("== repeat request after cache wipe (only the store survives) ==")
	before := harness.SimCount()
	job2, err := client.Launch(ctx, api.LaunchRequest{Experiment: "fig14", Scale: "quick"})
	check(err)
	final2 := follow(ctx, client, job2.ID)
	fmt.Printf("repeat run: cached=%v, %d simulations executed (process counter delta %d)\n\n",
		final2.Cached, final2.Sims, harness.SimCount()-before)

	// 3. The stored table is also directly fetchable, no job needed.
	res, err := client.Result(ctx, "fig14", "quick")
	check(err)
	fmt.Printf("GET result fig14@quick -> %q (%d data rows)\n\n", res.Result.Title, len(res.Result.Table.Rows))

	// 4. Cancellation: launch a heavier experiment, then cancel the run.
	// The job's context aborts in-flight simulations at the next chunk
	// boundary and the SSE stream ends with a terminal "canceled" event.
	fmt.Println("== cancellation: launch fig9a at default scale, then cancel ==")
	job3, err := client.Launch(ctx, api.LaunchRequest{Experiment: "fig9a"})
	check(err)
	go func() {
		time.Sleep(300 * time.Millisecond)
		j, err := client.Cancel(ctx, job3.ID)
		check(err)
		fmt.Printf("canceled %s (status now %q)\n", j.ID, j.Status)
	}()
	final3 := follow(ctx, client, job3.ID)
	fmt.Printf("canceled run ended with status %q (error %q)\n", final3.Status, final3.Error)
	h, err := client.Health(ctx)
	check(err)
	fmt.Printf("healthz after cancellation: ok=%v, jobs=%d\n\n", h.OK, h.Jobs)

	// 5. Overload and polite retry: a service with a single queue slot
	// sheds excess launches with a typed queue_full error carrying the
	// server's Retry-After hint. A no-retry client surfaces the shed so
	// we can inspect it; the default client honors the hint (with
	// jitter, so a thundering herd spreads out) and gets in as soon as
	// capacity frees up.
	fmt.Println("== overload: queue depth 1, then retry with jittered backoff ==")
	small, err := serve.New(serve.Config{Store: results.Open(dir), QueueDepth: 1})
	check(err)
	defer small.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln2, small.Handler())
	base2 := "http://" + ln2.Addr().String()
	impatient := api.NewClient(base2, api.WithRetries(0))
	patient := api.NewClient(base2)

	blocker, err := impatient.Launch(ctx, api.LaunchRequest{Experiment: "fig9a"})
	check(err)
	waitRunning(ctx, impatient, blocker.ID) // occupies the executor
	filler, err := impatient.Launch(ctx, api.LaunchRequest{Experiment: "fig14", Scale: "quick"})
	check(err) // occupies the one queue slot
	fmt.Printf("executor busy with %s, queue holds %s\n", blocker.ID, filler.ID)

	// The no-retry client sees the raw shed: a typed, retryable error.
	_, err = impatient.Launch(ctx, api.LaunchRequest{Experiment: "fig1", Scale: "quick"})
	var shed *api.Error
	if errors.As(err, &shed) {
		fmt.Printf("no-retry client shed: code=%s retryable=%v retry-after=%ds (%s)\n",
			shed.Code, shed.Retryable, shed.RetryAfterSec, shed.Message)
	}

	// Free capacity shortly after the rejection so the retrying client
	// has something to succeed against.
	go func() {
		time.Sleep(700 * time.Millisecond)
		j, err := patient.Cancel(ctx, blocker.ID)
		check(err)
		fmt.Printf("  (freed capacity: canceled %s, status %q)\n", j.ID, j.Status)
	}()

	accepted, err := patient.Launch(ctx, api.LaunchRequest{Experiment: "fig1", Scale: "quick"})
	check(err)
	fmt.Printf("retrying client got %s accepted\n", accepted.ID)
	final5 := follow(ctx, patient, accepted.ID)
	fmt.Printf("retried launch %s finished with status %q, cached=%v\n", accepted.ID, final5.Status, final5.Cached)
}

// follow streams a job's SSE events through the client, printing
// progress, and returns the terminal view.
func follow(ctx context.Context, c *api.Client, id string) api.Job {
	final, err := c.Events(ctx, id, func(ev api.Event) {
		if ev.Type == "progress" {
			if p, err := ev.AsProgress(); err == nil {
				fmt.Printf("  progress: %d simulations\r", p.Sims)
			}
		}
	})
	check(err)
	fmt.Println()
	return final
}

// waitRunning polls a job until it leaves the queued state.
func waitRunning(ctx context.Context, c *api.Client, id string) {
	for {
		j, err := c.Job(ctx, id)
		check(err)
		if j.Status != api.StatusQueued {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
