// Serving demo: run the experiment harness as an HTTP service with a
// persistent result store, launch an experiment over the API, stream its
// progress, then show an identical repeat request being answered from the
// store with zero additional simulation — the path from batch
// reproduction to a result-serving system. The final act launches a
// heavier run and cancels it with DELETE /api/runs/{id}: the SSE stream
// ends with a terminal "canceled" event while the service stays healthy.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "pythia-serve-demo")
	check(err)
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{Store: results.Open(dir)})
	check(err)
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("pythia-serve on %s (store %s)\n\n", base, dir)

	// 1. Launch Fig. 14 at quick scale and follow the SSE progress stream.
	fmt.Println("== first request: POST /api/runs {experiment: fig14, scale: quick} ==")
	job := launch(base, "fig14", "quick")
	final := follow(base, job.ID)
	fmt.Printf("\n%s\n", final.Rendered)
	fmt.Printf("first run: cached=%v, %d simulations executed\n\n", final.Cached, final.Sims)

	// 2. Simulate a fresh process: drop every in-memory cache. The store
	// on disk is all that remains.
	harness.ResetCaches()

	fmt.Println("== repeat request after cache wipe (only the store survives) ==")
	before := harness.SimCount()
	job2 := launch(base, "fig14", "quick")
	final2 := follow(base, job2.ID)
	fmt.Printf("repeat run: cached=%v, %d simulations executed (process counter delta %d)\n\n",
		final2.Cached, final2.Sims, harness.SimCount()-before)

	// 3. The stored table is also directly fetchable, no job needed.
	resp, err := http.Get(base + "/api/results/fig14?scale=quick")
	check(err)
	resp.Body.Close()
	fmt.Printf("GET /api/results/fig14?scale=quick -> %s\n\n", resp.Status)

	// 4. Cancellation: launch a heavier experiment, then DELETE the run.
	// The job's context aborts in-flight simulations at the next chunk
	// boundary and the SSE stream ends with a terminal "canceled" event.
	fmt.Println("== cancellation: POST fig9a at default scale, then DELETE the run ==")
	job3 := launch(base, "fig9a", "")
	go func() {
		time.Sleep(300 * time.Millisecond)
		req, err := http.NewRequest(http.MethodDelete, base+"/api/runs/"+job3.ID, nil)
		check(err)
		resp, err := http.DefaultClient.Do(req)
		check(err)
		resp.Body.Close()
		fmt.Printf("DELETE /api/runs/%s -> %s\n", job3.ID, resp.Status)
	}()
	final3 := follow(base, job3.ID)
	fmt.Printf("canceled run ended with status %q (error %q)\n", final3.Status, final3.Error)
	resp, err = http.Get(base + "/healthz")
	check(err)
	resp.Body.Close()
	fmt.Printf("GET /healthz after cancellation -> %s\n", resp.Status)
}

func launch(base, exp, scale string) serve.JobView {
	body, _ := json.Marshal(map[string]string{"experiment": exp, "scale": scale})
	resp, err := http.Post(base+"/api/runs", "application/json", bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	check(json.NewDecoder(resp.Body).Decode(&out))
	return out.Job
}

// follow streams a job's SSE events, printing progress, and returns the
// terminal view.
func follow(base, id string) serve.JobView {
	resp, err := http.Get(base + "/api/runs/" + id + "/events")
	check(err)
	defer resp.Body.Close()
	var final serve.JobView
	var evType string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch evType {
			case "progress":
				var p struct {
					Sims int64 `json:"sims"`
				}
				json.Unmarshal([]byte(data), &p)
				fmt.Printf("  progress: %d simulations\r", p.Sims)
			case serve.StatusDone, serve.StatusError, serve.StatusCanceled:
				json.Unmarshal([]byte(data), &final)
			}
		}
	}
	fmt.Println()
	return final
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
