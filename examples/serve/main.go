// Serving demo: run the experiment harness as an HTTP service with a
// persistent result store, launch an experiment over the API, stream its
// progress, then show an identical repeat request being answered from the
// store with zero additional simulation — the path from batch
// reproduction to a result-serving system. The next act launches a
// heavier run and cancels it with DELETE /api/runs/{id}: the SSE stream
// ends with a terminal "canceled" event while the service stays healthy.
// The final act overloads a deliberately tiny service until it sheds a
// launch with 503 + Retry-After, and shows the polite client response:
// jittered backoff driven by the server's own hint until the request is
// accepted.
//
//	go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pythia/internal/harness"
	"pythia/internal/results"
	"pythia/internal/serve"
)

func main() {
	dir, err := os.MkdirTemp("", "pythia-serve-demo")
	check(err)
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{Store: results.Open(dir)})
	check(err)
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Printf("pythia-serve on %s (store %s)\n\n", base, dir)

	// 1. Launch Fig. 14 at quick scale and follow the SSE progress stream.
	fmt.Println("== first request: POST /api/runs {experiment: fig14, scale: quick} ==")
	job := launch(base, "fig14", "quick")
	final := follow(base, job.ID)
	fmt.Printf("\n%s\n", final.Rendered)
	fmt.Printf("first run: cached=%v, %d simulations executed\n\n", final.Cached, final.Sims)

	// 2. Simulate a fresh process: drop every in-memory cache. The store
	// on disk is all that remains.
	harness.ResetCaches()

	fmt.Println("== repeat request after cache wipe (only the store survives) ==")
	before := harness.SimCount()
	job2 := launch(base, "fig14", "quick")
	final2 := follow(base, job2.ID)
	fmt.Printf("repeat run: cached=%v, %d simulations executed (process counter delta %d)\n\n",
		final2.Cached, final2.Sims, harness.SimCount()-before)

	// 3. The stored table is also directly fetchable, no job needed.
	resp, err := http.Get(base + "/api/results/fig14?scale=quick")
	check(err)
	resp.Body.Close()
	fmt.Printf("GET /api/results/fig14?scale=quick -> %s\n\n", resp.Status)

	// 4. Cancellation: launch a heavier experiment, then DELETE the run.
	// The job's context aborts in-flight simulations at the next chunk
	// boundary and the SSE stream ends with a terminal "canceled" event.
	fmt.Println("== cancellation: POST fig9a at default scale, then DELETE the run ==")
	job3 := launch(base, "fig9a", "")
	go func() {
		time.Sleep(300 * time.Millisecond)
		req, err := http.NewRequest(http.MethodDelete, base+"/api/runs/"+job3.ID, nil)
		check(err)
		resp, err := http.DefaultClient.Do(req)
		check(err)
		resp.Body.Close()
		fmt.Printf("DELETE /api/runs/%s -> %s\n", job3.ID, resp.Status)
	}()
	final3 := follow(base, job3.ID)
	fmt.Printf("canceled run ended with status %q (error %q)\n", final3.Status, final3.Error)
	resp, err = http.Get(base + "/healthz")
	check(err)
	resp.Body.Close()
	fmt.Printf("GET /healthz after cancellation -> %s\n\n", resp.Status)

	// 5. Overload and polite retry: a service with a single queue slot
	// sheds excess launches with 503 + Retry-After, and a client that
	// honors the hint (with jitter, so a thundering herd spreads out)
	// gets in as soon as capacity frees up.
	fmt.Println("== overload: queue depth 1, then retry with jittered backoff ==")
	small, err := serve.New(serve.Config{Store: results.Open(dir), QueueDepth: 1})
	check(err)
	defer small.Close()
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln2, small.Handler())
	base2 := "http://" + ln2.Addr().String()

	blocker := launch(base2, "fig9a", "") // occupies the executor
	waitRunning(base2, blocker.ID)
	filler := launch(base2, "fig14", "quick") // occupies the one queue slot
	fmt.Printf("executor busy with %s, queue holds %s\n", blocker.ID, filler.ID)

	// Free capacity shortly after the first rejection so the retry loop
	// has something to succeed against.
	go func() {
		time.Sleep(700 * time.Millisecond)
		req, err := http.NewRequest(http.MethodDelete, base2+"/api/runs/"+blocker.ID, nil)
		check(err)
		resp, err := http.DefaultClient.Do(req)
		check(err)
		resp.Body.Close()
		fmt.Printf("  (freed capacity: DELETE /api/runs/%s -> %s)\n", blocker.ID, resp.Status)
	}()

	accepted := launchWithRetry(base2, "fig1", "quick")
	final5 := follow(base2, accepted.ID)
	fmt.Printf("retried launch %s finished with status %q, cached=%v\n", accepted.ID, final5.Status, final5.Cached)
}

// launchWithRetry POSTs a run and, on 503, backs off by the server's
// Retry-After hint with added jitter before trying again — the client
// half of the service's load-shedding contract.
func launchWithRetry(base, exp, scale string) serve.JobView {
	body, _ := json.Marshal(map[string]string{"experiment": exp, "scale": scale})
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/api/runs", "application/json", bytes.NewReader(body))
		check(err)
		if resp.StatusCode != http.StatusServiceUnavailable {
			var out struct {
				Job serve.JobView `json:"job"`
			}
			check(json.NewDecoder(resp.Body).Decode(&out))
			resp.Body.Close()
			fmt.Printf("attempt %d: %s -> job %s accepted\n", attempt, resp.Status, out.Job.ID)
			return out.Job
		}
		resp.Body.Close()
		hint, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || hint < 1 {
			hint = 1
		}
		// Jitter uniformly over (0, hint]: honoring the hint exactly would
		// re-synchronize every shed client onto the same instant.
		wait := time.Duration(rand.Int63n(int64(time.Duration(hint) * time.Second)))
		fmt.Printf("attempt %d: 503 Service Unavailable, Retry-After %ds -> backing off %v\n",
			attempt, hint, wait.Round(time.Millisecond))
		time.Sleep(wait)
	}
}

// waitRunning polls a job until it leaves the queued state.
func waitRunning(base, id string) {
	for {
		resp, err := http.Get(base + "/api/runs/" + id)
		check(err)
		var out struct {
			Job serve.JobView `json:"job"`
		}
		check(json.NewDecoder(resp.Body).Decode(&out))
		resp.Body.Close()
		if out.Job.Status != serve.StatusQueued {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func launch(base, exp, scale string) serve.JobView {
	body, _ := json.Marshal(map[string]string{"experiment": exp, "scale": scale})
	resp, err := http.Post(base+"/api/runs", "application/json", bytes.NewReader(body))
	check(err)
	defer resp.Body.Close()
	var out struct {
		Job serve.JobView `json:"job"`
	}
	check(json.NewDecoder(resp.Body).Decode(&out))
	return out.Job
}

// follow streams a job's SSE events, printing progress, and returns the
// terminal view.
func follow(base, id string) serve.JobView {
	resp, err := http.Get(base + "/api/runs/" + id + "/events")
	check(err)
	defer resp.Body.Close()
	var final serve.JobView
	var evType string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch evType {
			case "progress":
				var p struct {
					Sims int64 `json:"sims"`
				}
				json.Unmarshal([]byte(data), &p)
				fmt.Printf("  progress: %d simulations\r", p.Sims)
			case serve.StatusDone, serve.StatusError, serve.StatusCanceled:
				json.Unmarshal([]byte(data), &final)
			}
		}
	}
	fmt.Println()
	return final
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
