// Policy: the trained-policy lifecycle end to end — train once, persist
// the learned Q-table, warm-start later evaluations from it. The paper
// frames Pythia's policy as programmable state reusable in silicon
// without refabrication; here the same property makes trained policies
// shareable artifacts: a repeat training request is a store hit with zero
// simulations, a warm-started agent is converged from its first
// instructions, and a policy refuses to load into a mismatched
// configuration. The final act serves the same store over pythia-serve's
// v1 API and downloads a snapshot through the typed client — trained
// policies as shippable network artifacts.
//
//	go run ./examples/policy
//	go run ./examples/policy -store /var/lib/pythia/policies -scale default
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pythia/internal/api"
	"pythia/internal/cache"
	"pythia/internal/core"
	"pythia/internal/harness"
	"pythia/internal/policy"
	"pythia/internal/results"
	"pythia/internal/serve"
	"pythia/internal/trace"
)

func main() {
	var (
		storeDir  = flag.String("store", "", "policy store directory (default: a temp dir wiped on exit)")
		scaleName = flag.String("scale", "quick", "scale: quick|default|full|long")
		trainWL   = flag.String("train", "459.GemsFDTD-100B", "training workload")
		evalWL    = flag.String("eval", "410.bwaves-100B", "cross-workload evaluation target")
	)
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	dir := *storeDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pythia-policy-example")
		check(err)
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	st := policy.Open(dir)
	sc, err := harness.ScaleByName(*scaleName)
	check(err)
	cfg := cache.DefaultConfig(1)
	wTrain, ok := trace.ByName(*trainWL)
	if !ok {
		check(fmt.Errorf("unknown workload %s", *trainWL))
	}
	wEval, ok := trace.ByName(*evalWL)
	if !ok {
		check(fmt.Errorf("unknown workload %s", *evalWL))
	}

	// --- 1. Train once ---
	ts := harness.TrainSpec{Workload: wTrain, CacheCfg: cfg, Scale: sc, Config: core.BasicConfig()}
	before := harness.SimCount()
	start := time.Now()
	env, hit, err := harness.TrainPolicyIn(ctx, st, ts)
	check(err)
	fmt.Printf("1. trained %s on %s: %v, %d simulation(s), hit=%v\n",
		env.Config, wTrain.Name, time.Since(start).Round(time.Millisecond), harness.SimCount()-before, hit)
	fmt.Printf("   policy %s (%d snapshot bytes) persisted in %s\n\n", env.ID, env.SnapshotBytes, dir)

	// --- 2. Repeat training: a store hit, zero simulations ---
	before = harness.SimCount()
	start = time.Now()
	_, hit, err = harness.TrainPolicyIn(ctx, policy.Open(dir), ts)
	check(err)
	fmt.Printf("2. repeat training request: %v, %d simulation(s), hit=%v — train once, reuse forever\n\n",
		time.Since(start).Round(time.Millisecond), harness.SimCount()-before, hit)

	// --- 3. Warm vs cold at a quarter of the horizon ---
	quarter := sc
	quarter.Sim = sc.Sim / 4
	run := func(w trace.Workload, scale harness.Scale, warm *policy.Envelope) float64 {
		r, err := harness.RunCached(ctx, harness.RunSpec{
			Mix: trace.HomogeneousMix(w, 1), CacheCfg: cfg, Scale: scale,
			PF: harness.BasicPythiaPF(), WarmStart: warm,
		})
		check(err)
		return r.IPC[0]
	}
	coldQ := run(wTrain, quarter, nil)
	warmQ := run(wTrain, quarter, &env)
	coldFull := run(wTrain, sc, nil)
	fmt.Printf("3. %s IPC at 1/4 horizon: cold %.3f, warm %.3f (full-horizon cold: %.3f)\n",
		wTrain.Name, coldQ, warmQ, coldFull)
	fmt.Printf("   the warm agent skips the learning ramp it already paid for\n\n")

	// --- 4. Cross-workload transfer ---
	coldX := run(wEval, quarter, nil)
	warmX := run(wEval, quarter, &env)
	fmt.Printf("4. transfer to %s at 1/4 horizon: cold %.3f, warm %.3f IPC\n",
		wEval.Name, coldX, warmX)
	fmt.Printf("   (ext-generalization renders the full train-on-A/evaluate-on-B matrix)\n\n")

	// --- 5. A policy cannot load into the wrong configuration ---
	strict := core.MustNew(core.StrictConfig(), nil)
	err = env.Restore(strict)
	fmt.Printf("5. restoring into pythia-strict: %v\n", err)
	fmt.Printf("   typed mismatch: errors.Is(err, policy.ErrMismatch) = %v\n\n", errors.Is(err, policy.ErrMismatch))

	// --- 6. The same store served over the v1 API ---
	// pythia-serve mounts the policy store behind /api/v1/policies; the
	// typed client lists metadata and downloads the raw snapshot bytes —
	// the "ship the learned tables to another machine" path, byte-for-byte
	// identical to what training persisted locally.
	resDir, err := os.MkdirTemp("", "pythia-policy-example-results")
	check(err)
	defer os.RemoveAll(resDir)
	srv, err := serve.New(serve.Config{Store: results.Open(resDir), Policies: st})
	check(err)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, srv.Handler())
	client := api.NewClient("http://" + ln.Addr().String())

	metas, err := client.Policies(ctx)
	check(err)
	fmt.Printf("6. GET /api/v1/policies on %s: %d stored\n", client.Base(), len(metas))
	for _, m := range metas {
		fmt.Printf("   %s  %s on %s (%d bytes)\n", m.ID, m.Config, m.TrainedOn.Workload, m.SnapshotBytes)
	}
	snap, err := client.PolicySnapshot(ctx, env.ID)
	check(err)
	fmt.Printf("   snapshot download: %d bytes, identical to local copy: %v\n",
		len(snap), bytes.Equal(snap, env.Snapshot))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
